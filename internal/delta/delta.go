// Package delta is the experiment harness for the paper's ∆-graphs:
// application A starts an I/O phase at a reference time, application B at an
// offset dt, and the observed I/O time (or interference factor I = T/T_alone)
// of each is plotted against dt, for each coordination policy.
package delta

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fluid"
	"repro/internal/ior"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/platform"
	"repro/internal/timeline"
)

// AppSpec describes one application in a scenario.
type AppSpec = platform.AppSpec

// Scenario is a full experimental setup: platform constants plus the
// applications. One Scenario value is immutable and reusable; runs execute
// on a platform.Pool, which builds the pfs+ior+mpi+layer object graph once
// per distinct spec and resets it per run.
type Scenario struct {
	Name          string
	FS            pfs.Config
	ProcNIC       float64 // per-process injection bandwidth (bytes/s)
	CommBWPerProc float64 // per-process collective-comm bandwidth (bytes/s)
	CommAlpha     float64 // interconnect latency for collectives (s)
	CoordLatency  float64 // CALCioM message latency (s)
	Apps          []AppSpec

	// TrueNetwork switches the contention model from per-server sharing
	// with static injection caps to an explicit fabric (per-app NIC links
	// plus per-server links) under global max-min fairness. Used by the
	// network-model ablation.
	TrueNetwork bool
}

// Spec converts the scenario to the platform package's build description.
func (sc Scenario) Spec() platform.Spec {
	return platform.Spec{
		FS:            sc.FS,
		TrueNetwork:   sc.TrueNetwork,
		ProcNIC:       sc.ProcNIC,
		CommBWPerProc: sc.CommBWPerProc,
		CommAlpha:     sc.CommAlpha,
		CoordLatency:  sc.CoordLatency,
		Apps:          sc.Apps,
	}
}

// PolicyFactory builds a fresh policy for one run; the model carries the
// scenario's platform constants. A nil PolicyFactory means "no coordination
// layer at all" (the uncoordinated baseline).
type PolicyFactory func(m *core.PerfModel) core.Policy

// Predefined factories.
var (
	Uncoordinated PolicyFactory // nil: no layer
	Interfere     PolicyFactory = func(*core.PerfModel) core.Policy { return core.InterferePolicy{} }
	FCFS          PolicyFactory = func(*core.PerfModel) core.Policy { return core.FCFSPolicy{} }
	Interrupt     PolicyFactory = func(*core.PerfModel) core.Policy { return core.InterruptPolicy{} }
)

// Dynamic returns a factory for CALCioM's adaptive policy under a metric.
func Dynamic(metric core.Metric, allowInterfere bool) PolicyFactory {
	return func(m *core.PerfModel) core.Policy {
		return core.DynamicPolicy{Metric: metric, Model: m, AllowInterfere: allowInterfere}
	}
}

// Delay returns a factory for the Fig. 12 delay/overlap tradeoff policy.
func Delay(overlap float64) PolicyFactory {
	return func(m *core.PerfModel) core.Policy {
		return core.DelayPolicy{Overlap: overlap, Model: m}
	}
}

// Result is the outcome of one run.
type Result struct {
	IOTime    []float64 // per app: observed I/O time summed over phases
	Stats     []*ior.Stats
	Decisions []core.DecisionRecord
	Makespan  float64 // last I/O completion time
}

// Model returns the performance model for the scenario's platform.
func (sc Scenario) Model() *core.PerfModel { return sc.Spec().Model() }

// Run executes the scenario once with each app's I/O phase starting at the
// given absolute time.
func (sc Scenario) Run(factory PolicyFactory, starts []float64) Result {
	return sc.RunWithTimeline(factory, starts, nil)
}

// RunWithTimeline is Run with an optional interval recorder for Gantt
// rendering. The recorder must not be shared between concurrent runs.
func (sc Scenario) RunWithTimeline(factory PolicyFactory, starts []float64, rec *timeline.Recorder) Result {
	return sc.RunOn(platform.NewPool(), factory, starts, rec)
}

// RunOn executes the scenario on a caller-provided pool, reusing its cached
// platform when the pool has run this scenario (with this coordination
// mode) before. A harness that re-runs one scenario — a sweep worker, a
// what-if loop — holds one pool and stops paying per-run platform
// construction; results are bit-identical to a fresh platform. One pool
// must not mix policy families (see platform.Pool), and Result.Stats
// aliases the pooled runners' statistics: it is valid until the pool runs
// the same spec again (IOTime, Decisions and Makespan are snapshots and
// always remain valid).
func (sc Scenario) RunOn(pool *platform.Pool, factory PolicyFactory, starts []float64, rec *timeline.Recorder) Result {
	if len(starts) != len(sc.Apps) {
		panic("delta: starts length mismatch")
	}
	pl := pool.Acquire(sc.Spec(), factory)
	end := pl.Run(starts, rec)

	res := Result{Makespan: end}
	for _, r := range pl.Runners {
		res.IOTime = append(res.IOTime, r.Stats.TotalIOTime())
		res.Stats = append(res.Stats, &r.Stats)
	}
	if pl.Layer != nil {
		res.Decisions = pl.Layer.Log()
	}
	return res
}

// Solo runs application i alone (starting at 0, uncoordinated) and returns
// its observed I/O time — the T_alone calibration for interference factors.
func (sc Scenario) Solo(i int) float64 {
	return sc.SoloOn(platform.NewPool(), i)
}

// SoloOn is Solo on a reused pool: the solo platform for app i is cached
// alongside any other specs the pool has built (see RunOn).
func (sc Scenario) SoloOn(pool *platform.Pool, i int) float64 {
	solo := sc
	solo.Apps = sc.Apps[i : i+1 : i+1]
	return solo.RunOn(pool, nil, soloStart[:], nil).IOTime[0]
}

// soloStart is the shared zero start vector of every solo calibration.
var soloStart = [1]float64{0}

// Series is a swept ∆-graph for a two-application scenario under one policy.
type Series struct {
	Policy  string
	DT      []float64
	TimeA   []float64 // observed I/O time of app A (starts at max(0,-dt))
	TimeB   []float64 // observed I/O time of app B (starts at max(0,+dt))
	FactorA []float64 // TimeA / SoloA
	FactorB []float64
	SoloA   float64
	SoloB   float64
	// CPUPerCore is the machine-wide f/Σcores for each dt (Fig. 11 axis).
	CPUPerCore []float64
}

// policyName resolves a factory's display name.
func policyName(sc Scenario, factory PolicyFactory) string {
	if factory == nil {
		return "uncoordinated"
	}
	return factory(sc.Model()).Name()
}

// Sweep runs the two-app scenario at every dt under the policy. dt > 0
// means B starts after A, matching the paper's convention. A fixed pool of
// worker goroutines (one per OS thread) pulls points off a shared counter —
// no goroutine-per-point churn. Each worker builds the platform once (its
// own engine, fabric, file system, apps, coordination layer) and re-runs it
// per point: pooled event records, flows, server requests and file objects
// all amortize across the worker's points, so the steady-state point
// allocates nothing. Each point is still its own deterministic run, so
// results are independent of the worker count and of scheduling order.
func (sc Scenario) Sweep(factory PolicyFactory, dts []float64) Series {
	if len(sc.Apps) != 2 {
		panic(fmt.Sprintf("delta: Sweep needs exactly 2 apps, got %d", len(sc.Apps)))
	}
	calib := platform.NewPool() // one engine for both solo calibrations
	s := Series{
		Policy: policyName(sc, factory),
		DT:     append([]float64(nil), dts...),
		SoloA:  sc.SoloOn(calib, 0),
		SoloB:  sc.SoloOn(calib, 1),
	}
	n := len(dts)
	s.TimeA = make([]float64, n)
	s.TimeB = make([]float64, n)
	s.FactorA = make([]float64, n)
	s.FactorB = make([]float64, n)
	s.CPUPerCore = make([]float64, n)

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	spec := sc.Spec()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One platform per worker, reused across all its points.
			pl := platform.NewPool().Acquire(spec, factory)
			starts := make([]float64, 2)
			rep := metrics.Report{Apps: make([]metrics.AppResult, 2)}
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				dt := dts[k]
				starts[0], starts[1] = 0, dt
				if dt < 0 {
					starts[0], starts[1] = -dt, 0
				}
				pl.Run(starts, nil)
				ta := pl.Runners[0].Stats.TotalIOTime()
				tb := pl.Runners[1].Stats.TotalIOTime()
				s.TimeA[k] = ta
				s.TimeB[k] = tb
				s.FactorA[k] = ta / s.SoloA
				s.FactorB[k] = tb / s.SoloB
				rep.Apps[0] = metrics.AppResult{Name: sc.Apps[0].Name, Cores: sc.Apps[0].Procs, IOTime: ta, AloneTime: s.SoloA}
				rep.Apps[1] = metrics.AppResult{Name: sc.Apps[1].Name, Cores: sc.Apps[1].Procs, IOTime: tb, AloneTime: s.SoloB}
				s.CPUPerCore[k] = rep.CPUSecondsPerCore()
			}
		}()
	}
	wg.Wait()
	return s
}

// Expected computes the paper's analytic "expected interference" ∆-graph:
// each application's I/O phase is treated as a unit of service equal to its
// solo time, and overlapping phases progress under equal proportional
// sharing (two overlapped apps each run at half speed). This is the
// piecewise-linear ∆ the graphs are named after: a peak of 2x the solo time
// at dt = 0, decaying to the solo time once the offset exceeds the phase
// length. Real systems can interfere less than this model (Figs. 7b, 8a —
// comm phases and injection limits leave headroom) or more (cache effects,
// Fig. 3).
func (sc Scenario) Expected(dts []float64) Series {
	if len(sc.Apps) != 2 {
		panic("delta: Expected needs exactly 2 apps")
	}
	calib := platform.NewPool()
	s := Series{
		Policy: "expected",
		DT:     append([]float64(nil), dts...),
		SoloA:  sc.SoloOn(calib, 0),
		SoloB:  sc.SoloOn(calib, 1),
	}
	flows := []fluid.Flow{
		{Work: s.SoloA, Weight: 1},
		{Work: s.SoloB, Weight: 1},
	}
	var solver fluid.Solver // water-fill scratch shared across the sweep
	starts := make([]float64, 2)
	for _, dt := range dts {
		startA, startB := 0.0, dt
		if dt < 0 {
			startA, startB = -dt, 0
		}
		starts[0], starts[1] = startA, startB
		fin := solver.StaggeredFinishTimes(1, flows, starts)
		ta := fin[0] - startA
		tb := fin[1] - startB
		s.TimeA = append(s.TimeA, ta)
		s.TimeB = append(s.TimeB, tb)
		s.FactorA = append(s.FactorA, ta/s.SoloA)
		s.FactorB = append(s.FactorB, tb/s.SoloB)
		f := (float64(sc.Apps[0].Procs)*ta + float64(sc.Apps[1].Procs)*tb) /
			float64(sc.Apps[0].Procs+sc.Apps[1].Procs)
		s.CPUPerCore = append(s.CPUPerCore, f)
	}
	return s
}
