package repro

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/delta"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/fluid"
	"repro/internal/ior"
	"repro/internal/pfs"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/swf"
)

// Every table and figure of the paper's evaluation has a benchmark here
// that regenerates it. The first iteration of each benchmark prints the
// reproduced table (so `go test -bench .` emits the same rows/series the
// paper reports); key headline numbers are attached as custom metrics.
//
// Run: go test -bench=. -benchmem

var printOnce sync.Map

func printTable(b *testing.B, tbl *experiments.Table) {
	if _, loaded := printOnce.LoadOrStore(tbl.ID, true); !loaded {
		fmt.Println()
		_ = tbl.Render(os.Stdout)
	}
}

func colMax(t *experiments.Table, col string) float64 {
	m := 0.0
	for _, v := range t.Column(col) {
		if v > m {
			m = v
		}
	}
	return m
}

// benchTrace keeps Fig. 1 benches fast while preserving distribution shape.
var benchTrace = experiments.TraceConfig{Seed: 20090101, Days: 60}

func BenchmarkFig1aJobSizes(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig1a(benchTrace)
	}
	printTable(b, tbl)
	cdf := tbl.Column("cdf_pct")
	cores := tbl.Column("cores")
	for i := range cores {
		if cores[i] == 2048 {
			b.ReportMetric(cdf[i], "%jobs<=2048cores")
		}
	}
}

func BenchmarkFig1bConcurrency(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig1b(benchTrace)
	}
	printTable(b, tbl)
}

func BenchmarkProbabilityIO(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.ProbIO(benchTrace)
	}
	printTable(b, tbl)
	mus := tbl.Column("mu_pct")
	ps := tbl.Column("prob_pct")
	for i := range mus {
		if mus[i] == 5 {
			b.ReportMetric(ps[i], "P(IO)%@mu=5%")
		}
	}
}

func BenchmarkFig2DeltaGraph(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig2(13)
	}
	printTable(b, tbl)
	b.ReportMetric(colMax(tbl, "timeA_s"), "peak_s")
}

func BenchmarkFig3Caching(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig3(10)
	}
	printTable(b, tbl)
	// Collapse ratio: worst interfered iteration vs alone.
	alone := tbl.Column("alone_MiBps")
	shared := tbl.Column("interfered_MiBps")
	worst := alone[0]
	for i := range shared {
		if shared[i] < worst {
			worst = shared[i]
		}
	}
	b.ReportMetric(alone[0]/worst, "cache_collapse_x")
}

func BenchmarkFig4Aggregate(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig4()
	}
	printTable(b, tbl)
	cores := tbl.Column("coresB")
	slow := tbl.Column("slowdownB")
	for i := range cores {
		if cores[i] == 8 {
			b.ReportMetric(slow[i], "slowdownB@8cores_x")
		}
	}
}

func BenchmarkFig6SizeSweep(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig6(11)
	}
	printTable(b, tbl)
	b.ReportMetric(colMax(tbl, "factorB"), "worst_factorB_x")
}

func BenchmarkFig7aFCFS(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig7a(13)
	}
	printTable(b, tbl)
	b.ReportMetric(colMax(tbl, "tB_fcfs"), "worst_tB_fcfs_s")
}

func BenchmarkFig7bLowInterference(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig7b(13)
	}
	printTable(b, tbl)
	peak := colMax(tbl, "tA_interfere")
	expect := colMax(tbl, "tA_expected")
	b.ReportMetric(peak/expect, "peak_vs_expected")
}

func BenchmarkFig8aCollective(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig8a(17)
	}
	printTable(b, tbl)
	b.ReportMetric(colMax(tbl, "tB_fcfs")-colMax(tbl, "tB_interfere"), "fcfs_penalty_s")
}

func BenchmarkFig8bPhases(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig8b()
	}
	printTable(b, tbl)
	comm := tbl.Column("commA_s")
	write := tbl.Column("writeA_s")
	b.ReportMetric(comm[1]/comm[0], "comm_impact_x")
	b.ReportMetric(write[1]/write[0], "write_impact_x")
}

func BenchmarkFig9Policies(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig9(21)
	}
	printTable(b, tbl)
	b.ReportMetric(colMax(tbl, "fB_fcfs"), "worst_fB_fcfs_x")
	b.ReportMetric(colMax(tbl, "fB_interrupt"), "worst_fB_interrupt_x")
}

func BenchmarkFig10Granularity(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig10(21)
	}
	printTable(b, tbl)
	b.ReportMetric(colMax(tbl, "tB_fileIRQ"), "worst_tB_file_s")
	b.ReportMetric(colMax(tbl, "tB_roundIRQ"), "worst_tB_round_s")
}

func BenchmarkFig11Dynamic(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig11(21)
	}
	printTable(b, tbl)
	base := tbl.Column("percore_interfere_s")
	dyn := tbl.Column("percore_calciom_s")
	var saved float64
	for i := range base {
		saved += base[i] - dyn[i]
	}
	b.ReportMetric(saved/float64(len(base)), "avg_saving_s_per_core")
}

func BenchmarkFig12Delay(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Fig12(15)
	}
	printTable(b, tbl)
}

func BenchmarkAblationServerScheduler(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.AblationServerScheduler()
	}
	printTable(b, tbl)
}

func BenchmarkAblationGranularity(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.AblationGranularity()
	}
	printTable(b, tbl)
}

func BenchmarkAblationMessageLatency(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.AblationMessageLatency()
	}
	printTable(b, tbl)
}

func BenchmarkAblationCollectiveBuffer(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.AblationCollectiveBuffer()
	}
	printTable(b, tbl)
}

// --- Microbenchmarks of the substrate ---------------------------------

// BenchmarkFabricReassign measures the steady-state contention hot path:
// a populated fabric (2 app NICs, 16 servers, 64 flows) forced through
// advance+reassign by capacity changes, with no flow churn. This is the
// inner loop of every TrueNetwork simulation; it must stay allocation-free.
func BenchmarkFabricReassign(b *testing.B) {
	eng := sim.NewEngine()
	fb := fabric.New(eng)
	nics := []*fabric.Link{fb.NewLink("nicA", 4e9), fb.NewLink("nicB", 4e9)}
	servers := make([]*fabric.Link, 16)
	for i := range servers {
		servers[i] = fb.NewLink(fmt.Sprintf("srv%d", i), 1e9)
	}
	for i := 0; i < 64; i++ {
		fb.Start(fmt.Sprintf("f%d", i), 1e18, 1+float64(i%3),
			[]*fabric.Link{nics[i%2], servers[i%16]}, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate a server's capacity: each call is one advance+reassign.
		servers[0].SetCapacity(1e9 + float64(i&1)*1e8)
	}
}

// BenchmarkEngineSchedule measures one schedule+fire cycle of a heap event.
func BenchmarkEngineSchedule(b *testing.B) {
	eng := sim.NewEngine()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(1, nop)
		eng.Run()
	}
}

// BenchmarkDeltaSweepFabric is the macro-benchmark the solver rewrite
// targets: a full ∆-graph sweep under the explicit-fabric contention model
// (TrueNetwork), the paper's most expensive evaluation mode. Since the
// persistent sweep executor, the timed region holds one delta.Sweeper and
// one output Series across iterations — what a parameter study does — so
// the remaining allocs/op are the per-sweep worker goroutines, not platform
// construction (TestSweeperSteadyStateAllocs pins the bound).
func BenchmarkDeltaSweepFabric(b *testing.B) {
	sc := experiments.SurveyorPlatform()
	sc.TrueNetwork = true
	w := ior.Workload{Pattern: ior.Contiguous, BlockSize: 32 << 20, BlocksPerProc: 1, ReqBytes: 4 << 20}
	sc.Apps = []delta.AppSpec{
		{Name: "A", Procs: 2048, Nodes: 512, W: w, Gran: ior.PerRound},
		{Name: "B", Procs: 2048, Nodes: 512, W: w, Gran: ior.PerRound},
	}
	dts := []float64{-10, -5, -2, 0, 2, 5, 10}
	sw := delta.NewSweeper()
	var s delta.Series
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.SweepInto(&s, sc, delta.Uncoordinated, dts)
	}
}

// BenchmarkDeltaSweepFabricDense is the same sweep at paper-figure
// resolution (49 points): with many points per worker, the per-worker
// engine reuse introduced with sim.Engine.Reset amortizes event-record
// allocations across points instead of re-paying them per run.
func BenchmarkDeltaSweepFabricDense(b *testing.B) {
	sc := experiments.SurveyorPlatform()
	sc.TrueNetwork = true
	w := ior.Workload{Pattern: ior.Contiguous, BlockSize: 32 << 20, BlocksPerProc: 1, ReqBytes: 4 << 20}
	sc.Apps = []delta.AppSpec{
		{Name: "A", Procs: 2048, Nodes: 512, W: w, Gran: ior.PerRound},
		{Name: "B", Procs: 2048, Nodes: 512, W: w, Gran: ior.PerRound},
	}
	dts := make([]float64, 49)
	for i := range dts {
		dts[i] = float64(i - 24)
	}
	sw := delta.NewSweeper()
	var s delta.Series
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.SweepInto(&s, sc, delta.Uncoordinated, dts)
	}
}

// BenchmarkDeltaPointReused measures the marginal cost of one additional
// ∆-sweep point on a reused platform — what every point after a worker's
// first costs since the resettable-platform rework: pure simulation, zero
// allocations.
func BenchmarkDeltaPointReused(b *testing.B) {
	sc := experiments.SurveyorPlatform()
	sc.TrueNetwork = true
	w := ior.Workload{Pattern: ior.Contiguous, BlockSize: 32 << 20, BlocksPerProc: 1, ReqBytes: 4 << 20}
	sc.Apps = []delta.AppSpec{
		{Name: "A", Procs: 2048, Nodes: 512, W: w, Gran: ior.PerRound},
		{Name: "B", Procs: 2048, Nodes: 512, W: w, Gran: ior.PerRound},
	}
	pl := platform.NewPool().Acquire(sc.Spec(), nil)
	starts := []float64{0, 5}
	pl.Run(starts, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Run(starts, nil)
	}
}

func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(1, func() {})
	}
	eng.Run()
}

func BenchmarkEngineProcSleep(b *testing.B) {
	eng := sim.NewEngine()
	eng.Go("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	eng.Run()
}

func BenchmarkFluidContention(b *testing.B) {
	// 64 concurrent jobs repeatedly joining/leaving one resource.
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		r := fluid.NewResource(eng, "r", 1e9)
		for j := 0; j < 64; j++ {
			eng.At(float64(j)*0.01, func() {
				r.Submit("j", 1e7, 1, 0, nil)
			})
		}
		eng.Run()
	}
}

func BenchmarkPFSWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fs := pfs.New(eng, pfs.Config{Servers: 16, StripeBytes: 1 << 20, ServerBW: 1 << 30})
		f := fs.Create("f")
		eng.Go("w", func(p *sim.Proc) {
			f.Write(p, pfs.Request{App: "a", Length: 1 << 30, Weight: 64})
		})
		eng.Run()
	}
}

func BenchmarkScenarioRun(b *testing.B) {
	sc := experiments.SurveyorPlatform()
	w := ior.Workload{Pattern: ior.Contiguous, BlockSize: 32 << 20, BlocksPerProc: 1, ReqBytes: 4 << 20}
	sc.Apps = []delta.AppSpec{
		{Name: "A", Procs: 2048, Nodes: 512, W: w, Gran: ior.PerRound},
		{Name: "B", Procs: 2048, Nodes: 512, W: w, Gran: ior.PerRound},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Run(delta.FCFS, []float64{0, 5})
	}
}

func BenchmarkSWFGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		swf.Generate(swf.GenConfig{Seed: int64(i), Days: 30})
	}
}

func BenchmarkSWFConcurrency(b *testing.B) {
	tr := swf.Generate(swf.GenConfig{Seed: 1, Days: 60})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		swf.ConcurrencyDistribution(tr)
	}
}

func BenchmarkMachineStudy(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.MachineStudy(80)
	}
	printTable(b, tbl)
	over := tbl.Column("overhead_pct")
	b.ReportMetric(over[0], "uncoordinated_overhead_%")
	b.ReportMetric(over[1], "fcfs_overhead_%")
}

func BenchmarkExtensionAdaptive(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.ExtensionAdaptive()
	}
	printTable(b, tbl)
	sums := tbl.Column("sum_factors")
	b.ReportMetric(sums[0]-sums[1], "factor_saving")
}

func BenchmarkAblationNetworkModel(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.AblationNetworkModel()
	}
	printTable(b, tbl)
}

// BenchmarkEnginePost measures the zero-delay fast path: one posted
// callback per op, fully allocation-free.
func BenchmarkEnginePost(b *testing.B) {
	eng := sim.NewEngine()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Post(nop)
		eng.Run()
	}
}
