// Command calciom-machine runs the trace-driven whole-machine study: an SWF
// job trace (real or synthetic) replayed against a shared parallel file
// system, each job doing periodic I/O, under a chosen coordination policy.
//
// Examples:
//
//	calciom-machine                              # synthetic day, all policies
//	calciom-machine -policy fcfs -jobs 300
//	calciom-machine -file ANL-Intrepid-2009-1.swf -days 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/machine"
	"repro/internal/swf"
)

func main() {
	file := flag.String("file", "", "SWF trace file (empty: synthetic Intrepid-like)")
	days := flag.Float64("days", 1, "trace length in days (synthetic) / horizon (real)")
	seed := flag.Int64("seed", 42, "synthetic trace seed")
	jobs := flag.Int("jobs", 150, "max jobs to replay (0 = all)")
	servers := flag.Int("servers", 32, "file-system servers")
	bytesPerCore := flag.Int64("mib-per-core", 8, "MiB written per core per phase")
	period := flag.Float64("period", 300, "seconds of compute between I/O phases")
	policy := flag.String("policy", "all", "policy: none|fcfs|interrupt|dynamic|all")
	flag.Parse()

	var tr *swf.Trace
	var err error
	if *file != "" {
		f, err2 := os.Open(*file)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, err2)
			os.Exit(1)
		}
		defer f.Close()
		tr, err = swf.Parse(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Clamp to the horizon.
		horizon := *days * 86400
		var jobsIn []swf.Job
		for _, j := range tr.Jobs {
			if j.Submit <= horizon {
				jobsIn = append(jobsIn, j)
			}
		}
		tr.Jobs = jobsIn
	} else {
		tr = swf.Generate(swf.GenConfig{Seed: *seed, Days: *days})
	}

	cfg := machine.IntrepidConfig()
	cfg.FS.Servers = *servers
	cfg.BytesPerCore = *bytesPerCore << 20
	cfg.PhasePeriod = *period
	cfg.MaxJobs = *jobs

	fmt.Printf("trace: %d jobs; machine: %d servers (%.1f GiB/s), %d MiB/core every %.0fs\n\n",
		len(tr.Jobs), cfg.FS.Servers,
		float64(cfg.FS.Servers)*cfg.FS.ServerBW/float64(1<<30),
		*bytesPerCore, *period)

	type entry struct {
		name    string
		factory delta.PolicyFactory
	}
	policies := map[string]entry{
		"none":      {"uncoordinated", delta.Uncoordinated},
		"fcfs":      {"fcfs", delta.FCFS},
		"interrupt": {"interrupt", delta.Interrupt},
		"dynamic":   {"dynamic(cpu-s)", delta.Dynamic(core.CPUSecondsWasted{}, true)},
	}
	var order []string
	if *policy == "all" {
		order = []string{"none", "fcfs", "interrupt", "dynamic"}
	} else if _, ok := policies[*policy]; ok {
		order = []string{*policy}
	} else {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	for _, key := range order {
		e := policies[key]
		res := machine.Run(cfg, tr, e.factory)
		fmt.Println(res)
		// Worst five jobs by interference factor.
		worst := append([]machine.JobOutcome(nil), res.Jobs...)
		for i := 0; i < len(worst); i++ {
			for j := i + 1; j < len(worst); j++ {
				if worst[j].Factor > worst[i].Factor {
					worst[i], worst[j] = worst[j], worst[i]
				}
			}
		}
		n := 5
		if len(worst) < n {
			n = len(worst)
		}
		for _, w := range worst[:n] {
			fmt.Printf("   worst: job%-6d %7d cores  I=%6.2f  (io %.1fs vs solo %.1fs)\n",
				w.ID, w.Cores, w.Factor, w.IOTime, w.SoloIO)
		}
		fmt.Println()
	}
}
