// Command calciom-sim executes one two-application scenario and narrates it:
// the event timeline, every CALCioM arbitration decision, and the final
// per-application outcome. Useful for understanding what a policy actually
// does at a given dt.
//
// Example:
//
//	calciom-sim -platform surveyor -policy dynamic -dt 5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/experiments"
	"repro/internal/ior"
	"repro/internal/metrics"
	"repro/internal/timeline"
)

const miB = int64(1) << 20

func main() {
	platform := flag.String("platform", "surveyor", "platform: rennes | nancy | surveyor")
	policy := flag.String("policy", "dynamic", "policy: interfere|fcfs|interrupt|dynamic|delay|none")
	dt := flag.Float64("dt", 5, "start offset of application B (seconds)")
	procs := flag.Int("procs", 2048, "processes per application")
	filesA := flag.Int("files-a", 4, "files written by A")
	filesB := flag.Int("files-b", 1, "files written by B")
	mibPerProc := flag.Int64("mib-per-proc", 4, "MiB per process per file")
	flag.Parse()

	sc, perNode := pick(*platform)
	mk := func(files int) ior.Workload {
		return ior.Workload{
			Pattern:       ior.Contiguous,
			BlockSize:     *mibPerProc * miB,
			BlocksPerProc: 1,
			Files:         files,
			ReqBytes:      miB,
		}
	}
	nodes := *procs / perNode
	if nodes < 1 {
		nodes = 1
	}
	sc.Apps = []delta.AppSpec{
		{Name: "A", Procs: *procs, Nodes: nodes, W: mk(*filesA), Gran: ior.PerRound},
		{Name: "B", Procs: *procs, Nodes: nodes, W: mk(*filesB), Gran: ior.PerRound},
	}

	factory, ok := pickPolicy(*policy)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	soloA, soloB := sc.Solo(0), sc.Solo(1)
	fmt.Printf("scenario: %s, 2x%d procs; A: %d files, B: %d files, %d MiB/proc\n",
		sc.Name, *procs, *filesA, *filesB, *mibPerProc)
	fmt.Printf("solo times: A=%.3fs B=%.3fs; dt=%.2fs; policy=%s\n\n", soloA, soloB, *dt, *policy)

	starts := []float64{0, *dt}
	if *dt < 0 {
		starts = []float64{-*dt, 0}
	}
	rec := &timeline.Recorder{}
	res := sc.RunWithTimeline(factory, starts, rec)

	if len(res.Decisions) > 0 {
		fmt.Println("arbitration decisions:")
		for _, d := range res.Decisions {
			fmt.Printf("  t=%8.3f  allowed=%-8v  %s\n", d.Time, d.Allowed, d.Reason)
		}
		fmt.Println()
	}

	rep := metrics.Report{Apps: []metrics.AppResult{
		{Name: "A", Cores: *procs, IOTime: res.IOTime[0], AloneTime: soloA},
		{Name: "B", Cores: *procs, IOTime: res.IOTime[1], AloneTime: soloB},
	}}
	fmt.Println("outcome:")
	fmt.Println(rep)
	fmt.Printf("makespan: %.3fs\n", res.Makespan)
	for i, st := range res.Stats {
		for p, ph := range st.Phases {
			fmt.Printf("  %s phase %d: start=%.3f end=%.3f comm=%.3f write=%.3f (%.1f MiB/s)\n",
				sc.Apps[i].Name, p, ph.Start, ph.End, ph.CommTime, ph.WriteTime,
				ph.Throughput()/float64(miB))
		}
	}
	fmt.Println()
	fmt.Print(rec.Gantt(90))
}

func pick(name string) (delta.Scenario, int) {
	switch name {
	case "rennes":
		return experiments.RennesPlatform(), experiments.RennesCoresPerNode
	case "nancy":
		return experiments.NancyPlatform(false), experiments.NancyCoresPerNode
	case "surveyor":
		return experiments.SurveyorPlatform(), experiments.SurveyorCoresPerNode
	}
	fmt.Fprintf(os.Stderr, "unknown platform %q\n", name)
	os.Exit(2)
	return delta.Scenario{}, 0
}

func pickPolicy(name string) (delta.PolicyFactory, bool) {
	switch name {
	case "none", "interfere":
		return delta.Uncoordinated, true
	case "fcfs":
		return delta.FCFS, true
	case "interrupt":
		return delta.Interrupt, true
	case "dynamic":
		return delta.Dynamic(core.CPUSecondsWasted{}, false), true
	case "delay":
		return delta.Delay(0.5), true
	}
	return nil, false
}
