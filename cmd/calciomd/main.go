// Command calciomd runs the CALCioM coordination layer as a live daemon:
// applications connect over TCP (internal/wire protocol), declare their I/O
// phases, and the configured policy arbitrates who may access the file
// system — the paper's coordination API served online instead of inside the
// simulator.
//
// Configuration comes from a strict JSON file (internal/config.Daemon) with
// flag overrides:
//
//	calciomd -config daemon.json
//	calciomd -listen 127.0.0.1:9595 -policy fcfs -session-timeout 60
//
// With -record (or record_path in the config) the daemon writes every
// coordination event to a trace file; calciom-replay re-arbitrates such a
// trace offline under every policy. Recording adds no allocation or
// blocking to the arbitration hot path.
//
// With -admin (or admin_addr) the daemon serves its observability endpoints
// on a second address: /metrics in Prometheus text format (per-target grant,
// arbitration and revoke counters, queue depth, wait and hold latency
// histograms, per-app rows from the stats merge), /healthz
// (serving/draining/degraded), /statusz (the full stats snapshot as JSON)
// and net/http/pprof under /debug/pprof/. Collection uses the same
// discipline as recording: atomic adds into preallocated series, zero
// allocation on the hot path. With -log-level the daemon additionally emits
// a structured grant-lifecycle event stream to stderr (sampled per
// -log-sample for the high-frequency grant events).
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener closes, every
// pending Wait is answered with a retryable "draining" error (reconnecting
// clients back off and resume against the daemon's successor), the trace
// trailer is flushed, and the daemon reports the grants it served. With
// -grant-grace a disconnected client's registration and grants survive the
// given window, so a client that reconnects in time resumes instead of
// starting over. Pair it with calciom-load for a quick smoke:
//
//	calciomd -listen 127.0.0.1:9595 -record run.trace   # terminal 1
//	calciom-load -addr 127.0.0.1:9595                   # terminal 2
//	calciom-replay -trace run.trace                     # afterwards
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	cfgPath := flag.String("config", "", "JSON daemon configuration file")
	listen := flag.String("listen", "", "listen address (overrides config)")
	policy := flag.String("policy", "", "arbitration policy: fcfs|interrupt|interfere|delay (overrides config)")
	timeout := flag.Float64("session-timeout", -1, "evict sessions idle this many seconds; 0 disables (overrides config)")
	grace := flag.Float64("grant-grace", -1, "keep a disconnected session's grants this many seconds for resume; 0 drops immediately (overrides config)")
	record := flag.String("record", "", "record every coordination event to this trace file (overrides config)")
	statsEvery := flag.Duration("stats-interval", 0, "print a live metrics line this often (0 = off)")
	quiet := flag.Bool("quiet", false, "suppress connection lifecycle logging")
	admin := flag.String("admin", "", "serve /metrics, /healthz, /statusz and pprof on this address, e.g. 127.0.0.1:9596 (overrides config)")
	logLevel := flag.String("log-level", "", "grant-lifecycle event logging to stderr: debug|info|warn|error; empty = off (overrides config)")
	logSample := flag.Int("log-sample", -1, "log every Nth grant event; lifecycle events always log (overrides config)")
	maxSessions := flag.Int("max-sessions", 0, "reject registrations beyond this many live sessions with a retryable busy error; 0 = unlimited (overrides config)")
	handshakeTimeout := flag.Float64("handshake-timeout", -1, "drop connections that have not registered within this many seconds; 0 disables (overrides config)")
	maxRPS := flag.Float64("max-requests-per-sec", -1, "per-connection request rate limit; 0 disables (overrides config)")
	acceptLoops := flag.Int("accept-loops", -1, "shard the listener accept loop across this many goroutines; 0 or 1 = single loop (overrides config)")
	sockBuffer := flag.Int("sock-buffer", -1, "kernel socket read/write buffer bytes per connection; 0 = OS default (overrides config)")
	drainLinger := flag.Duration("drain-linger", 0, "after a drain signal, keep /healthz answering \"draining\" this long (or until a second signal) before shutting down")
	flag.Parse()

	d := config.Daemon{}
	if *cfgPath != "" {
		var err error
		if d, err = config.LoadDaemon(*cfgPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *listen != "" {
		d.ListenAddr = *listen
	}
	if *policy != "" {
		d.Policy = *policy
	}
	if *timeout >= 0 {
		d.SessionTimeoutS = *timeout
	}
	if *grace >= 0 {
		d.GrantGraceS = *grace
	}
	if *record != "" {
		d.RecordPath = *record
	}
	if *admin != "" {
		d.AdminAddr = *admin
	}
	if *logLevel != "" {
		d.LogLevel = *logLevel
	}
	if *logSample >= 0 {
		d.LogSample = *logSample
	}
	if *maxSessions > 0 {
		d.MaxSessions = *maxSessions
	}
	if *handshakeTimeout >= 0 {
		d.HandshakeTimeoutS = *handshakeTimeout
	}
	if *maxRPS >= 0 {
		d.MaxRequestsPerSec = *maxRPS
	}
	if *acceptLoops >= 0 {
		d.AcceptLoops = *acceptLoops
	}
	if *sockBuffer >= 0 {
		d.SockBufferBytes = *sockBuffer
	}
	if err := d.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pol, err := d.BuildPolicy()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var tw *trace.Writer
	var tf *os.File
	if d.RecordPath != "" {
		tf, err = os.Create(d.RecordPath)
		if err == nil {
			// Crash-consistent by default: periodic sync points bound how
			// much trace a kill -9 loses, and calciom-replay -allow-truncated
			// reads the survivors.
			tw, err = trace.NewWriterOptions(tf, d.TraceHeader(), d.TraceOptions())
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	// Metrics collection rides the admin listener: no listener, no registry,
	// and the hot path runs exactly the pre-observability instruction stream.
	var reg *obs.Registry
	if d.AdminAddr != "" {
		reg = obs.NewRegistry()
	}
	var evlog *obs.EventLog
	if level, ok := d.EventLevel(); ok {
		handler := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
		evlog = obs.NewEventLog(slog.New(handler), d.LogSampleN(), 0)
	}

	srv, err := server.New(server.Config{
		ListenAddr:       d.Addr(),
		Policy:           pol,
		Model:            d.Model(),
		SessionTimeout:   d.SessionTimeout(),
		GrantGrace:       d.GrantGrace(),
		MaxSessions:      d.MaxSessions,
		HandshakeTimeout: d.HandshakeTimeout(),
		RateLimit:        d.MaxRequestsPerSec,
		AcceptLoops:      d.AcceptLoops,
		SockBuffer:       d.SockBufferBytes,
		LogBound:         d.DecisionLog,
		Logf:             logf,
		Trace:            tw,
		Metrics:          reg,
		Events:           evlog,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var adminSrv *http.Server
	if d.AdminAddr != "" {
		handler := (&obs.Admin{
			Registry: reg,
			Extra:    srv.WriteStatsMetrics,
			Health:   srv.Health,
			Status:   func() any { return srv.Stats() },
		}).Handler()
		adminLn, err := net.Listen("tcp", d.AdminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		adminSrv = &http.Server{Handler: handler}
		go adminSrv.Serve(adminLn)
		if logf != nil {
			logf("calciomd: admin on %s", adminLn.Addr())
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	secondSig := make(chan struct{})
	go func() {
		// First signal: graceful drain — stop accepting, answer pending
		// waits with a retryable "draining" error, let main flush the trace
		// trailer (and, with -drain-linger, keep /healthz answering
		// "draining" for the window). Second signal: immediate shutdown.
		<-sig
		srv.Drain()
		<-sig
		close(secondSig)
		srv.Close()
	}()

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := srv.Stats()
				fmt.Printf("calciomd: t=%.1fs sessions=%d grants=%d arbitrations=%d cpu-sec-wasted=%.1f convoy-wait=%.3fs proto-wait=%.3fs\n",
					st.NowS, st.Sessions, st.GrantsServed, st.Arbitrations, st.CPUSecondsWasted,
					st.ConvoyWaitS, st.ProtocolWaitS)
			}
		}()
	}

	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// A drained daemon can linger so operators (and the chaos smoke) observe
	// /healthz reporting "draining" before teardown; a second signal cuts
	// the linger short.
	if *drainLinger > 0 && srv.Draining() {
		select {
		case <-time.After(*drainLinger):
		case <-secondSig:
		}
	}
	// ListenAndServe returns as soon as the accept loop stops; the
	// arbitration goroutine may still be draining queued envelopes (and
	// recording them). Close blocks until the whole teardown — including
	// the signal goroutine's — is complete, so the trace writer below
	// cannot race a Record.
	srv.Close()
	if adminSrv != nil {
		adminSrv.Close()
	}
	if evlog != nil {
		evlog.Close()
		if n := evlog.Dropped(); n > 0 && logf != nil {
			logf("calciomd: events: %d dropped (buffer overflow)", n)
		}
	}
	st := srv.Stats()
	fmt.Printf("calciomd: clean shutdown: policy=%s grants-served=%d arbitrations=%d uptime=%.3fs\n",
		st.Policy, st.GrantsServed, st.Arbitrations, st.NowS)
	if tw != nil {
		err := tw.Close()
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "calciomd: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("calciomd: trace: events=%d dropped=%d path=%s\n",
			tw.Recorded(), tw.Dropped(), d.RecordPath)
	}
}
