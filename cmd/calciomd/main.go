// Command calciomd runs the CALCioM coordination layer as a live daemon:
// applications connect over TCP (internal/wire protocol), declare their I/O
// phases, and the configured policy arbitrates who may access the file
// system — the paper's coordination API served online instead of inside the
// simulator.
//
// Configuration comes from a strict JSON file (internal/config.Daemon) with
// flag overrides:
//
//	calciomd -config daemon.json
//	calciomd -listen 127.0.0.1:9595 -policy fcfs -session-timeout 60
//
// On SIGINT/SIGTERM the daemon shuts down cleanly and reports the grants it
// served. Pair it with calciom-load for a quick smoke:
//
//	calciomd -listen 127.0.0.1:9595        # terminal 1
//	calciom-load -addr 127.0.0.1:9595      # terminal 2
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/server"
)

func main() {
	cfgPath := flag.String("config", "", "JSON daemon configuration file")
	listen := flag.String("listen", "", "listen address (overrides config)")
	policy := flag.String("policy", "", "arbitration policy: fcfs|interrupt|interfere|delay (overrides config)")
	timeout := flag.Float64("session-timeout", -1, "evict sessions idle this many seconds; 0 disables (overrides config)")
	statsEvery := flag.Duration("stats-interval", 0, "print a live metrics line this often (0 = off)")
	quiet := flag.Bool("quiet", false, "suppress connection lifecycle logging")
	flag.Parse()

	d := config.Daemon{}
	if *cfgPath != "" {
		var err error
		if d, err = config.LoadDaemon(*cfgPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *listen != "" {
		d.ListenAddr = *listen
	}
	if *policy != "" {
		d.Policy = *policy
	}
	if *timeout >= 0 {
		d.SessionTimeoutS = *timeout
	}
	pol, err := d.BuildPolicy()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	srv, err := server.New(server.Config{
		ListenAddr:     d.Addr(),
		Policy:         pol,
		Model:          d.Model(),
		SessionTimeout: d.SessionTimeout(),
		LogBound:       d.DecisionLog,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		srv.Close()
	}()

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := srv.Stats()
				fmt.Printf("calciomd: t=%.1fs sessions=%d grants=%d arbitrations=%d cpu-sec-wasted=%.1f\n",
					st.NowS, st.Sessions, st.GrantsServed, st.Arbitrations, st.CPUSecondsWasted)
			}
		}()
	}

	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Printf("calciomd: clean shutdown: policy=%s grants-served=%d arbitrations=%d uptime=%.3fs\n",
		st.Policy, st.GrantsServed, st.Arbitrations, st.NowS)
}
