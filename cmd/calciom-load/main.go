// Command calciom-load drives a calciomd daemon with N concurrent client
// connections, either replaying an SWF job trace or running a synthetic
// phase mix, and reports grant throughput and wait-latency percentiles.
//
//	calciom-load -addr 127.0.0.1:9595 -clients 64 -phases 4 -steps 4
//	calciom-load -addr 127.0.0.1:9595 -swf trace.swf -jobs 256
//
// Replay is closed-loop: jobs are dealt round-robin to the client
// connections and each client runs its jobs back to back (submit times are
// ignored), so the daemon sees a sustained concurrency of -clients.
//
// With -targets N the workload exercises the daemon's per-storage-target
// arbitration: phases are spread round-robin across targets t0..tN-1 (phase
// j coordinates on target t(j mod N)), and the byte-stable aggregate block
// gains one deterministic "agg-target:" line per target, sorted by name.
// -targets 0 or 1 keeps every phase on the default target — the original
// single-target traffic, byte for byte.
//
// Output is split into an "agg:" block — aggregate counters that are
// byte-stable across runs for a fixed workload, independent of goroutine
// interleaving — and a "timing:" block (throughput, latency percentiles)
// that legitimately varies. The agg block counts only clients that
// connected and completed their work; failed clients are reported in the
// attempted-vs-connected fields and a separate "partial:" line, so a
// connection failure mid-ramp cannot silently skew the byte-stable
// counters.
//
// With -record the fleet's traffic is captured client-side into a trace
// file (one session per client, timestamps on a shared clock) that
// calciom-replay can re-arbitrate under any policy.
//
// With -mux-conns M the fleet shares M physical connections instead of
// dialing one per client: sessions are dealt round-robin across the shared
// connections as multiplexed streams (protocol v3, the mux extension of the
// binary codec), so -clients 1024 -mux-conns 8 holds 1024 live sessions on
// 8 sockets. The workload, the agg: block and the grant accounting are
// unchanged — only the transport differs.
//
// With -scrape URL the tool fetches the daemon's /metrics endpoint after
// the burst and prints a "scrape:" line (grants, waits and the
// wait-histogram count, summed across targets, plus the connection counter
// split out by its mux label). Against a fresh daemon and
// a fixed fault-free workload the grants and wait-count fields are
// deterministic and must equal the agg block's grant count, so smoke tests
// can diff the daemon's Prometheus view against client-side truth exactly;
// the immediate/deferred split reflects arrival interleaving and varies.
//
// The fault-tolerance flags exercise the robust client: -reconnect survives
// daemon restarts (sessions resume under the same name), -fail-open bounds
// how long any client blocks on a dead daemon before self-granting, and the
// -chaos-* flags interpose an in-process fault-injecting proxy (resets,
// delays, partitions) between the fleet and the daemon. With any of these
// set the output gains a "degraded:" line accounting for self-granted
// waits; the "agg:" grants counter keeps counting only daemon-coordinated
// grants, so grants + self-grants always equals the waits the workload
// performed. Without these flags the output is byte-identical to the
// fault-free tool.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/wirebin"
)

const miB = float64(1 << 20)

// task is one I/O phase a client performs: declared bytes, the job's core
// count, the number of atomic access steps (coordination points), and the
// storage target the phase coordinates on ("" = the daemon's default).
type task struct {
	bytes  float64
	cores  int
	steps  int
	target string
}

// counters is the deterministic slice of a workload: phases completed,
// grants received, bytes declared.
type counters struct {
	phases int
	grants int
	bytes  float64
}

// result accumulates one client's deterministic counters (total and per
// target) and its wait latencies. connected reports that Dial+Register
// succeeded, separating "never reached the daemon" from "failed
// mid-workload". degraded is the client's fail-open accounting; grants
// counts only daemon-coordinated grants (self-grants are subtracted), so
// grants + degraded.SelfGrants is the number of waits the workload
// performed.
type result struct {
	connected bool
	counters
	perTarget map[string]counters
	lats      []time.Duration
	degraded  client.DegradedReport
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9595", "calciomd address")
	prefix := flag.String("prefix", "app", "application name prefix (make it unique per run when reusing a daemon: a previous run's sessions may still be unregistering)")
	clients := flag.Int("clients", 64, "concurrent client connections")
	phases := flag.Int("phases", 4, "synthetic: I/O phases per client")
	steps := flag.Int("steps", 4, "synthetic: access steps (coordination points) per phase")
	mib := flag.Float64("mib", 64, "synthetic: MiB declared per phase")
	cores := flag.Int("cores", 32, "synthetic: cores declared per application")
	think := flag.Duration("think", 0, "compute time between phases")
	stagger := flag.Duration("stagger", 0, "per-client start offset: client i begins i*stagger after launch, spreading the initial Inform burst so wait-latency percentiles measure protocol cost rather than the fcfs start-up convoy")
	targets := flag.Int("targets", 1, "spread phases round-robin across this many storage targets (t0..tN-1); <=1 keeps the single default target")
	swfPath := flag.String("swf", "", "replay this SWF trace instead of the synthetic mix")
	jobs := flag.Int("jobs", 0, "SWF: cap on jobs replayed (0 = clients*phases)")
	swfMiBPerProc := flag.Float64("swf-mib-per-proc", 1, "SWF: declared MiB per job process")
	record := flag.String("record", "", "capture the fleet's traffic client-side to this trace file")
	registerTarget := flag.String("register-target", "", "register every client with this default storage target (tasks without an explicit target coordinate there)")
	reconnect := flag.Bool("reconnect", false, "survive daemon restarts: reconnect with backoff and resume sessions")
	failOpen := flag.Duration("fail-open", 0, "self-grant after the daemon has been unreachable this long (implies -reconnect)")
	chaosReset := flag.Duration("chaos-reset", 0, "chaos proxy: reset each connection roughly this long after accept")
	chaosDelay := flag.Duration("chaos-delay", 0, "chaos proxy: delay every forwarded chunk this long")
	chaosPartEvery := flag.Duration("chaos-partition-every", 0, "chaos proxy: start a partition window this often")
	chaosPartFor := flag.Duration("chaos-partition-for", 0, "chaos proxy: partition window length")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos proxy: deterministic fault schedule seed")
	chaosGarbage := flag.Bool("chaos-garbage", false, "chaos proxy: inject seeded protocol garbage (bit flips, junk frames) into the client→daemon stream")
	flood := flag.Bool("flood", false, "overload probe: every client registers at once, admitted clients run max-rate check loops and earn one grant each; prints a shed: line instead of the workload blocks")
	floodChecks := flag.Int("flood-checks", 8, "flood: back-to-back Check calls per admitted client")
	churn := flag.Bool("churn", false, "connection-churn probe: every client repeatedly connects, registers, runs one coordinated phase and disconnects; prints a churn: line instead of the workload blocks")
	churnLoops := flag.Int("churn-loops", 8, "churn: connect/register/phase/disconnect loops per client")
	codec := flag.String("codec", "json", "wire codec: json (v1, the default protocol) or binary (negotiate the v2 binary codec at connect)")
	muxConns := flag.Int("mux-conns", 0, "multiplex the fleet over this many shared physical connections (negotiates the v3 mux extension of the binary codec; implies -codec binary; 0 = one plain connection per client)")
	scrape := flag.String("scrape", "", "after the burst, fetch the daemon's Prometheus endpoint at this URL (e.g. http://127.0.0.1:9596/metrics) and print a byte-stable scrape: line")
	flag.Parse()
	if *failOpen > 0 {
		*reconnect = true
	}
	robust := *reconnect || *failOpen > 0

	tasks, err := buildTasks(*swfPath, *clients, *phases, *steps, *mib, *cores, *jobs, *swfMiBPerProc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Phase j coordinates on target t(j mod N): round-robin by task index,
	// so the per-target workload split is deterministic regardless of how
	// tasks are later dealt to clients.
	if *targets > 1 {
		for i := range tasks {
			tasks[i].target = fmt.Sprintf("t%d", i%*targets)
		}
	}

	// Client-side capture: one shared writer, one session per client, all
	// timestamps on one clock starting at launch. The header carries the
	// daemon's policy so calciom-replay knows the recording baseline.
	var tw *trace.Writer
	var tf *os.File
	if *record != "" {
		policy, _ := daemonView(*addr)
		if policy == "?" {
			policy = ""
		}
		tf, err = os.Create(*record)
		if err == nil {
			tw, err = trace.NewWriter(tf, trace.Header{Source: trace.SourceClient, Policy: policy}, 0)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	// With chaos enabled the fleet dials a fault-injecting proxy in front of
	// the daemon; the final daemonView still goes direct so the report is
	// not a chaos casualty.
	dialAddr := *addr
	if *chaosReset > 0 || *chaosDelay > 0 || *chaosGarbage || (*chaosPartEvery > 0 && *chaosPartFor > 0) {
		p, err := chaos.New(chaos.Options{
			Target:         *addr,
			ResetEvery:     *chaosReset,
			Delay:          *chaosDelay,
			PartitionEvery: *chaosPartEvery,
			PartitionFor:   *chaosPartFor,
			Garbage:        *chaosGarbage,
			Seed:           *chaosSeed,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer p.Close()
		dialAddr = p.Addr()
		fmt.Fprintf(os.Stderr, "chaos: proxying %s via %s\n", *addr, dialAddr)
	}
	copts := client.Options{Reconnect: *reconnect, FailOpen: *failOpen}
	switch *codec {
	case "json":
	case "binary":
		copts.Codec = wirebin.Codec{}
	default:
		fmt.Fprintf(os.Stderr, "calciom-load: unknown -codec %q (want json or binary)\n", *codec)
		os.Exit(2)
	}

	// dial hands client i its connection. Without -mux-conns each client
	// dials its own plain connection; with it, M shared physical connections
	// are dialed up front (the mux handshake negotiates the v3 binary
	// extension regardless of -codec) and the fleet's sessions are dealt
	// round-robin across them as logical streams.
	dial := func(int) (*client.Client, error) { return client.DialOptions(dialAddr, copts) }
	if *muxConns > 0 {
		if *flood || *churn {
			fmt.Fprintln(os.Stderr, "calciom-load: -mux-conns applies to the workload modes, not -flood/-churn")
			os.Exit(2)
		}
		muxes := make([]*client.Mux, *muxConns)
		for i := range muxes {
			m, err := client.DialMux(dialAddr, copts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "calciom-load: mux dial %d: %v\n", i, err)
				os.Exit(2)
			}
			muxes[i] = m
			defer m.Close()
		}
		conns := *muxConns
		dial = func(i int) (*client.Client, error) { return muxes[i%conns].Client() }
	}

	// Flood mode probes the daemon's overload protection instead of running
	// the workload: it reports a shed: line and exits. The workload flags
	// (and -record) do not apply.
	if *flood {
		if tw != nil {
			tw.Close()
			tf.Close()
		}
		os.Exit(runFlood(dialAddr, *addr, *prefix, *clients, *floodChecks, copts))
	}

	// Churn mode probes the connect path — accept, codec negotiation,
	// register, one grant cycle, teardown — instead of steady-state
	// throughput. It reports a churn: line and exits.
	if *churn {
		if tw != nil {
			tw.Close()
			tf.Close()
		}
		os.Exit(runChurn(dialAddr, *addr, *prefix, *clients, *churnLoops, copts))
	}

	var wg sync.WaitGroup
	results := make([]result, *clients)
	errs := make([]error, *clients)
	start := time.Now()
	clock := func() float64 { return time.Since(start).Seconds() }
	for i := 0; i < *clients; i++ {
		// Deal tasks round-robin so the assignment is independent of
		// scheduling order.
		var mine []task
		for j := i; j < len(tasks); j += *clients {
			mine = append(mine, tasks[j])
		}
		wg.Add(1)
		go func(i int, mine []task) {
			defer wg.Done()
			// Stagger the fleet: without it all clients Inform at once and
			// the tail latencies are dominated by the fcfs queue position,
			// not by the protocol. The workload itself is unchanged, so the
			// agg: block stays byte-stable for a fixed workload+stagger.
			if *stagger > 0 {
				time.Sleep(time.Duration(i) * *stagger)
			}
			results[i], errs[i] = runClient(func() (*client.Client, error) { return dial(i) },
				fmt.Sprintf("%s-%04d", *prefix, i), mine, *think,
				tw, uint32(i+1), clock, *registerTarget)
		}(i, mine)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Only clients that completed their workload feed the byte-stable agg
	// counters; failures are explicit (attempted vs connected, the error
	// count, and a partial: line), never silently folded in.
	var tot, partial result
	var deg client.DegradedReport
	perTarget := map[string]counters{}
	connected, nerr := 0, 0
	for i := range results {
		if results[i].connected {
			connected++
		}
		deg.SelfGrants += results[i].degraded.SelfGrants
		deg.Seconds += results[i].degraded.Seconds
		deg.Windows += results[i].degraded.Windows
		if errs[i] != nil {
			nerr++
			partial.phases += results[i].phases
			partial.grants += results[i].grants
			partial.bytes += results[i].bytes
			fmt.Fprintf(os.Stderr, "%s-%04d: %v\n", *prefix, i, errs[i])
			continue
		}
		tot.phases += results[i].phases
		tot.grants += results[i].grants
		tot.bytes += results[i].bytes
		tot.lats = append(tot.lats, results[i].lats...)
		for target, c := range results[i].perTarget {
			agg := perTarget[target]
			agg.phases += c.phases
			agg.grants += c.grants
			agg.bytes += c.bytes
			perTarget[target] = agg
		}
	}

	// The agg line holds only client-side counters for this run: for a
	// fixed workload it is byte-stable across runs regardless of goroutine
	// interleaving. The daemon line reports the server's cumulative view
	// (it keeps counting across load runs against a long-lived daemon).
	policy, daemonGrants := daemonView(*addr)
	fmt.Printf("agg: clients=%d connected=%d tasks=%d phases=%d grants=%d mib=%.0f errors=%d\n",
		*clients, connected, len(tasks), tot.phases, tot.grants, tot.bytes/miB, nerr)
	if *targets > 1 {
		// One byte-stable line per target, deterministically sorted.
		names := make([]string, 0, len(perTarget))
		for target := range perTarget {
			names = append(names, target)
		}
		sort.Strings(names)
		for _, target := range names {
			c := perTarget[target]
			fmt.Printf("agg-target: target=%s phases=%d grants=%d mib=%.0f\n",
				target, c.phases, c.grants, c.bytes/miB)
		}
	}
	if nerr > 0 {
		fmt.Printf("partial: clients=%d phases=%d grants=%d mib=%.0f\n",
			nerr, partial.phases, partial.grants, partial.bytes/miB)
	}
	// The degraded line appears only when the robust client is in play, so
	// fault-free output stays byte-identical. self-grants is the fleet's
	// client-side truth (grants + self-grants == waits performed);
	// daemon-self-grants is what resumed sessions managed to report before
	// the run ended (a client that finished while still degraded reports
	// nothing). degraded-s is wall clock and varies.
	if robust {
		var dself uint64
		var dapps int
		if st, err := daemonStats(*addr); err == nil {
			dself, dapps = st.SelfGrants, len(st.Degraded)
		}
		fmt.Printf("degraded: self-grants=%d windows=%d degraded-s=%.3f daemon-self-grants=%d daemon-degraded-apps=%d\n",
			deg.SelfGrants, deg.Windows, deg.Seconds, dself, dapps)
	}
	fmt.Printf("daemon: policy=%s grants-served=%d\n", policy, daemonGrants)
	// The scrape line is the daemon's /metrics view of the same counters the
	// agg block reports client-side: grants and waits summed across targets,
	// plus the wait-histogram observation count. Against a fresh daemon and
	// a fixed fault-free workload, grants and wait-count are deterministic
	// (and equal); the immediate/deferred split varies with interleaving.
	if *scrape != "" {
		sums, err := scrapeMetrics(*scrape)
		if err != nil {
			fmt.Fprintf(os.Stderr, "calciom-load: scrape: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("scrape: grants=%d waits-immediate=%d waits-deferred=%d wait-count=%d connections=%d mux-connections=%d\n",
			sums["calciomd_grants_total"],
			sums["calciomd_waits_immediate_total"],
			sums["calciomd_waits_deferred_total"],
			sums["calciomd_wait_seconds_count"],
			sums["calciomd_connections_total"],
			sums[muxConnsKey])
	}
	fmt.Printf("timing: elapsed=%.3fs throughput=%.0f grants/s\n",
		elapsed.Seconds(), float64(tot.grants)/elapsed.Seconds())
	if len(tot.lats) > 0 {
		sort.Slice(tot.lats, func(i, j int) bool { return tot.lats[i] < tot.lats[j] })
		fmt.Printf("timing: wait-latency p50=%s p90=%s p99=%s max=%s\n",
			pct(tot.lats, 50), pct(tot.lats, 90), pct(tot.lats, 99), tot.lats[len(tot.lats)-1])
	}
	if tw != nil {
		err := tw.Close()
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "calciom-load: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: events=%d dropped=%d path=%s\n", tw.Recorded(), tw.Dropped(), *record)
	}
	if nerr > 0 {
		os.Exit(1)
	}
}

// runFlood probes the daemon's overload-protection layer: every client
// dials and registers at once (a barrier holds admitted clients until the
// whole fleet has a register outcome, so the admitted/busy split is pinned
// by the daemon's -max-sessions bound, not by scheduling luck). Admitted
// clients then run back-to-back Check calls — the advisory traffic the
// daemon sheds first — followed by the minimal grant cycle (Inform, Wait,
// Release, End), so each admitted client earns exactly one grant and
// grants == admitted is the conservation invariant overload smoke tests
// assert. Busy rejects at the session bound and overloaded replies (shed
// or rate-limited requests, retried here after a backoff) are counted
// into the shed: line; with a fixed fleet against a fresh daemon the
// clients/admitted/busy/grants/errors fields are deterministic, while
// overloaded depends on timing.
func runFlood(dialAddr, addr, prefix string, clients, checks int, opts client.Options) int {
	type floodResult struct {
		admitted   bool
		busy       bool
		overloaded int
		grants     int
		err        error
	}
	results := make([]floodResult, clients)
	var regWG, wg sync.WaitGroup
	regWG.Add(clients)
	wg.Add(clients)
	registered := make(chan struct{})
	go func() { regWG.Wait(); close(registered) }()
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			r := &results[i]
			regDone := false
			defer func() {
				if !regDone {
					regWG.Done()
				}
			}()
			c, err := client.DialOptions(dialAddr, opts)
			if err != nil {
				r.err = err
				return
			}
			defer c.Close()
			// Retry-in-place on overloaded replies: the rate limiter answers
			// the first over-budget request with one retryable overloaded
			// error and disconnects only on sustained abuse, so backing off
			// after each one keeps the connection alive at the limit.
			over := func(f func() error) error {
				for {
					err := f()
					var re *client.ReplyError
					if err != nil && errors.As(err, &re) && re.Code == wire.CodeOverloaded {
						r.overloaded++
						time.Sleep(50 * time.Millisecond)
						continue
					}
					return err
				}
			}
			name := fmt.Sprintf("%s-%04d", prefix, i)
			err = over(func() error { return c.Register(name, 1) })
			regDone = true
			regWG.Done()
			if err != nil {
				var re *client.ReplyError
				if errors.As(err, &re) && re.Code == wire.CodeBusy {
					r.busy = true
				} else {
					r.err = err
				}
				return
			}
			r.admitted = true
			<-registered
			tg := c.Target("")
			for k := 0; k < checks; k++ {
				if r.err = over(func() error { _, err := tg.Check(); return err }); r.err != nil {
					return
				}
			}
			steps := []func() error{
				tg.Inform,
				tg.Wait,
				func() error { return tg.Release(0) },
				tg.End,
			}
			for _, step := range steps {
				if r.err = over(step); r.err != nil {
					return
				}
			}
			r.grants++
		}(i)
	}
	wg.Wait()

	admitted, busy, overloaded, grants, nerr := 0, 0, 0, 0, 0
	for i := range results {
		if results[i].admitted {
			admitted++
		}
		if results[i].busy {
			busy++
		}
		overloaded += results[i].overloaded
		grants += results[i].grants
		if results[i].err != nil {
			nerr++
			fmt.Fprintf(os.Stderr, "%s-%04d: %v\n", prefix, i, results[i].err)
		}
	}
	fmt.Printf("shed: clients=%d admitted=%d busy=%d overloaded=%d grants=%d errors=%d\n",
		clients, admitted, busy, overloaded, grants, nerr)
	policy, daemonGrants := daemonView(addr)
	fmt.Printf("daemon: policy=%s grants-served=%d\n", policy, daemonGrants)
	if nerr > 0 {
		return 1
	}
	return 0
}

// runChurn probes the connect path instead of steady-state throughput:
// every client repeatedly dials, registers under a loop-unique name,
// runs the minimal grant cycle (Inform, Wait, Release, End) and
// disconnects, so the daemon's accept loop, codec negotiation and session
// teardown are exercised clients*loops times. Names are unique per loop
// (prefix-iiii-l) so a fresh connection can never race the previous
// loop's unregistering session. Against a fresh daemon the churn: line is
// byte-stable: connects and grants both equal clients*loops on a clean
// run, and any failure is an error (no shed/busy tolerance — churn mode
// assumes an unloaded daemon).
func runChurn(dialAddr, addr, prefix string, clients, loops int, opts client.Options) int {
	type churnResult struct {
		connects int
		grants   int
		errs     []error
	}
	results := make([]churnResult, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			r := &results[i]
			for l := 0; l < loops; l++ {
				err := func() error {
					c, err := client.DialOptions(dialAddr, opts)
					if err != nil {
						return err
					}
					defer c.Close()
					if err := c.Register(fmt.Sprintf("%s-%04d-%d", prefix, i, l), 1); err != nil {
						return err
					}
					r.connects++
					tg := c.Target("")
					for _, step := range []func() error{
						tg.Inform,
						tg.Wait,
						func() error { return tg.Release(0) },
						tg.End,
					} {
						if err := step(); err != nil {
							return err
						}
					}
					r.grants++
					return nil
				}()
				if err != nil {
					r.errs = append(r.errs, fmt.Errorf("loop %d: %w", l, err))
				}
			}
		}(i)
	}
	wg.Wait()

	connects, grants, nerr := 0, 0, 0
	for i := range results {
		connects += results[i].connects
		grants += results[i].grants
		nerr += len(results[i].errs)
		for _, err := range results[i].errs {
			fmt.Fprintf(os.Stderr, "%s-%04d: %v\n", prefix, i, err)
		}
	}
	fmt.Printf("churn: clients=%d loops=%d connects=%d grants=%d errors=%d\n",
		clients, loops, connects, grants, nerr)
	policy, daemonGrants := daemonView(addr)
	fmt.Printf("daemon: policy=%s grants-served=%d\n", policy, daemonGrants)
	if nerr > 0 {
		return 1
	}
	return 0
}

// buildTasks constructs the workload: the synthetic phase mix, or one task
// per SWF job (bytes and steps scaled from the job's size).
func buildTasks(swfPath string, clients, phases, steps int, mib float64, cores, jobs int, mibPerProc float64) ([]task, error) {
	if clients <= 0 || phases <= 0 || steps <= 0 {
		return nil, fmt.Errorf("calciom-load: clients, phases and steps must be positive")
	}
	if swfPath == "" {
		tasks := make([]task, clients*phases)
		for i := range tasks {
			tasks[i] = task{bytes: mib * miB, cores: cores, steps: steps}
		}
		return tasks, nil
	}
	f, err := os.Open(swfPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := swf.Parse(f)
	if err != nil {
		return nil, err
	}
	js := append([]swf.Job(nil), tr.Jobs...)
	sort.Slice(js, func(a, b int) bool {
		if js[a].Submit != js[b].Submit {
			return js[a].Submit < js[b].Submit
		}
		return js[a].ID < js[b].ID
	})
	if jobs <= 0 {
		jobs = clients * phases
	}
	if jobs < len(js) {
		js = js[:jobs]
	}
	if len(js) == 0 {
		return nil, fmt.Errorf("calciom-load: trace %s has no jobs", swfPath)
	}
	tasks := make([]task, len(js))
	for i, j := range js {
		st := 1 + j.Procs/8192
		if st > 8 {
			st = 8
		}
		tasks[i] = task{bytes: float64(j.Procs) * mibPerProc * miB, cores: j.Procs, steps: st}
	}
	return tasks, nil
}

// runClient performs one session's tasks over the connection dial hands it
// (a plain per-client connection, or a logical stream on a shared mux
// connection): for each phase it runs the
// canonical CALCioM sequence (Prepare, Inform, Wait, steps × [access,
// Release/Inform/Wait], Complete, End) on the phase's storage target,
// timing every Wait. A non-nil tw captures the traffic client-side under
// the given trace session identity. The grants counter is corrected at the
// end to exclude self-granted waits (fail-open), so it counts only
// daemon-coordinated grants; self-grants land in result.degraded. (The
// per-target grant counters keep counting all served waits — per-target
// self-grant attribution is not tracked.)
func runClient(dial func() (*client.Client, error), name string, tasks []task, think time.Duration,
	tw *trace.Writer, sid uint32, clock func() float64,
	registerTarget string) (res result, err error) {
	res = result{perTarget: map[string]counters{}}
	c, err := dial()
	if err != nil {
		return res, err
	}
	defer c.Close()
	defer func() {
		res.degraded = c.DegradedReport()
		res.grants -= int(min(uint64(res.grants), res.degraded.SelfGrants))
	}()
	if tw != nil {
		c.CaptureTo(tw, sid, clock)
	}
	co := 1
	if len(tasks) > 0 {
		co = tasks[0].cores
	}
	if err := c.RegisterOn(name, co, registerTarget); err != nil {
		return res, err
	}
	res.connected = true
	for _, tk := range tasks {
		tg := c.Target(tk.target)
		wait := func() error {
			t0 := time.Now()
			if err := tg.Wait(); err != nil {
				return err
			}
			res.lats = append(res.lats, time.Since(t0))
			res.grants++
			c := res.perTarget[tk.target]
			c.grants++
			res.perTarget[tk.target] = c
			return nil
		}
		in := core.Info{}
		in.SetFloat(core.KeyBytesTotal, tk.bytes)
		in.SetInt(core.KeyCores, int64(tk.cores))
		if err := tg.Prepare(in); err != nil {
			return res, err
		}
		if err := tg.Inform(); err != nil {
			return res, err
		}
		if err := wait(); err != nil {
			return res, err
		}
		for s := 1; s <= tk.steps; s++ {
			done := tk.bytes * float64(s) / float64(tk.steps)
			if s < tk.steps {
				if err := tg.Release(done); err != nil {
					return res, err
				}
				if err := tg.Inform(); err != nil {
					return res, err
				}
				if err := wait(); err != nil {
					return res, err
				}
			} else {
				if err := tg.Release(done); err != nil {
					return res, err
				}
			}
		}
		if err := tg.Complete(); err != nil {
			return res, err
		}
		if err := tg.End(); err != nil {
			return res, err
		}
		res.phases++
		res.bytes += tk.bytes
		pc := res.perTarget[tk.target]
		pc.phases++
		pc.bytes += tk.bytes
		res.perTarget[tk.target] = pc
		if think > 0 {
			time.Sleep(think)
		}
	}
	return res, nil
}

// muxConnsKey is the synthetic sums entry scrapeMetrics fills with the
// connections_total samples whose label set carries mux="true" — the
// daemon's count of accepted multiplexed connections, which the scrape:
// line reports separately from the all-codec connection total.
const muxConnsKey = `calciomd_connections_total{mux="true"}`

// scrapeMetrics fetches a Prometheus text-format endpoint and sums every
// sample by family name (label sets collapse, so per-target series sum into
// the fleet-wide total). Values are parsed as floats — the text format
// renders counters that way — and truncated to integers.
func scrapeMetrics(url string) (map[string]uint64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	sums := map[string]uint64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		name := fields[0]
		labels := ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name, labels = name[:i], name[i:]
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || v < 0 {
			continue
		}
		sums[name] += uint64(v)
		if name == "calciomd_connections_total" && strings.Contains(labels, `mux="true"`) {
			sums[muxConnsKey] += uint64(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sums, nil
}

// daemonView fetches the daemon's own policy name and grant counter over a
// fresh connection.
func daemonView(addr string) (string, uint64) {
	st, err := daemonStats(addr)
	if err != nil {
		return "?", 0
	}
	return st.Policy, st.GrantsServed
}

// daemonStats fetches the daemon's full metrics snapshot.
func daemonStats(addr string) (wire.Stats, error) {
	c, err := client.Dial(addr)
	if err != nil {
		return wire.Stats{}, err
	}
	defer c.Close()
	return c.Stats()
}

// pct returns the p-th percentile of sorted latencies, rounded for display.
func pct(sorted []time.Duration, p int) time.Duration {
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx].Round(10 * time.Microsecond)
}
