// Command calciom-trace analyzes a job trace in Standard Workload Format
// the way the paper's Section II does: job-size distribution (Fig. 1a),
// concurrent-job distribution (Fig. 1b), and the probability that another
// application is doing I/O at any instant.
//
// With -file it reads a real SWF trace (e.g. ANL-Intrepid-2009-1.swf from
// the Parallel Workload Archive); without, it generates the calibrated
// synthetic Intrepid-like trace.
//
// With -coord it instead summarizes a coordination trace recorded by
// calciomd -record or calciom-load -record: header, event and session
// counts, span, and per-event-type totals. -allow-truncated accepts a
// trace whose recorder died mid-write (kill -9), reading up to the torn
// tail and reporting the truncation point.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/swf"
	"repro/internal/textplot"
	"repro/internal/trace"
)

func main() {
	file := flag.String("file", "", "SWF trace file (empty: synthetic Intrepid-like)")
	days := flag.Float64("days", 243, "synthetic trace length in days")
	seed := flag.Int64("seed", 20090101, "synthetic trace seed")
	mu := flag.Float64("mu", 0.05, "E[µ]: fraction of time an app spends in I/O")
	plot := flag.Bool("plot", true, "render ASCII charts")
	coord := flag.String("coord", "", "summarize this coordination trace (calciomd/calciom-load -record) instead of an SWF trace")
	allowTrunc := flag.Bool("allow-truncated", false, "with -coord: accept a truncated (crashed-recorder) trace, reporting the truncation point")
	flag.Parse()

	if *coord != "" {
		if err := summarizeCoord(*coord, *allowTrunc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var tr *swf.Trace
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tr, err = swf.Parse(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace: %s (%d jobs)\n\n", *file, len(tr.Jobs))
	} else {
		tr = swf.Generate(swf.GenConfig{Seed: *seed, Days: *days})
		fmt.Printf("trace: synthetic Intrepid-like, %d jobs over %.0f days (seed %d)\n\n",
			len(tr.Jobs), *days, *seed)
	}

	// Fig. 1a.
	fmt.Println("job-size distribution (Fig. 1a):")
	fmt.Printf("%10s  %8s  %8s  %9s  %9s\n", "cores<=", "%jobs", "CDF%", "%time", "timeCDF%")
	buckets := swf.SizeDistribution(tr)
	var labels []string
	var shares []float64
	for _, b := range buckets {
		fmt.Printf("%10d  %8.2f  %8.2f  %9.2f  %9.2f\n",
			b.Cores, 100*b.Share, 100*b.CDF, 100*b.TimeShare, 100*b.TimeCDF)
		labels = append(labels, fmt.Sprintf("%d", b.Cores))
		shares = append(shares, 100*b.Share)
	}
	fmt.Printf("median job size: %d cores\n\n", swf.MedianJobSize(tr))
	if *plot {
		fmt.Println(textplot.Bar("% of jobs by size bucket", labels, shares, 40))
	}

	// Fig. 1b.
	dist := swf.ConcurrencyDistribution(tr)
	fmt.Println("concurrent-jobs distribution (Fig. 1b):")
	fmt.Printf("mean concurrency: %.2f\n", swf.MeanConcurrency(tr))
	if *plot {
		var xs []float64
		var ys []float64
		for k, p := range dist {
			xs = append(xs, float64(k))
			ys = append(ys, p)
		}
		fmt.Println(textplot.Line("proportion of time vs #concurrent jobs", xs,
			[]textplot.Series{{Name: "P(X=k)", Y: ys}}, 64, 12))
	}

	// §II-B probability.
	fmt.Printf("P(another app is doing I/O) at E[µ]=%.0f%%: %.1f%%\n",
		100**mu, 100*swf.ProbOtherDoingIO(tr, *mu))
	fmt.Println("(paper: 64% at E[µ]=5% on the Intrepid trace)")
}

// summarizeCoord prints a deterministic summary of a coordination trace:
// the analysis entry point for a trace that may have survived a daemon
// crash, where the first question is "how much of it is usable?".
func summarizeCoord(path string, allowTrunc bool) error {
	load := trace.Load
	if allowTrunc {
		load = trace.LoadLenient
	}
	tr, err := load(path)
	if err != nil {
		return err
	}
	sessions, targets := 0, map[string]bool{}
	byType := map[string]int{}
	for _, ev := range tr.Events {
		byType[ev.Type.String()]++
		if ev.Type == trace.EvRegister {
			sessions++
		}
		targets[ev.Target] = true
	}
	first, last := tr.Span()
	fmt.Printf("coord-trace: path=%s source=%s policy=%s events=%d sessions=%d targets=%d span=%.3fs dropped=%d\n",
		path, tr.Header.Source, tr.Header.Policy, len(tr.Events), sessions, len(targets), last-first, tr.Dropped)
	if tr.Truncated {
		fmt.Printf("coord-trace: TRUNCATED after event %d (recorder died mid-write)\n", len(tr.Events))
	}
	names := make([]string, 0, len(byType))
	for name := range byType {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("coord-trace: type=%s count=%d\n", name, byType[name])
	}
	return nil
}
