// Command calciom-experiments regenerates every table and figure of the
// CALCioM paper's evaluation on the simulated platforms and prints them as
// text tables (optionally also CSV files).
//
// Usage:
//
//	calciom-experiments                 # run everything to stdout
//	calciom-experiments -list           # list experiment IDs
//	calciom-experiments -run fig9       # run one experiment
//	calciom-experiments -out results/   # also write <id>.txt and <id>.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "all", "experiment ID to run, or 'all'")
	out := flag.String("out", "", "directory to write <id>.txt and <id>.csv files")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Paper)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		e := experiments.ByID(*run)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
			os.Exit(2)
		}
		selected = []experiments.Experiment{*e}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	for _, e := range selected {
		tbl := e.Run()
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		if *out != "" {
			if err := writeFiles(*out, tbl.ID, tbl); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

func writeFiles(dir, id string, tbl *experiments.Table) error {
	txt, err := os.Create(filepath.Join(dir, id+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := tbl.Render(txt); err != nil {
		return err
	}
	csvf, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer csvf.Close()
	return tbl.WriteCSV(csvf)
}
