// Command calciom-replay re-arbitrates a recorded coordination trace
// offline: it reads a trace captured by calciomd -record (or calciom-load
// -record), verifies that replaying it under the recording policy
// reproduces the live grant sequence exactly, then replays the same arrival
// pattern under every policy and prints a comparison — total and tail wait,
// the convoy-vs-protocol decomposition, permitted interference overlap, the
// estimated interference factors and CPU-seconds wasted — with a
// recommended policy. It closes the paper's loop: observe live traffic,
// then answer "which coordination strategy fits this workload?" without
// re-running the applications.
//
//	calciomd -listen 127.0.0.1:9595 -record run.trace   # terminal 1
//	calciom-load -addr 127.0.0.1:9595 -clients 64       # terminal 2
//	calciom-replay -trace run.trace                     # afterwards
//
// The output is deterministic: running calciom-replay twice on one trace
// emits byte-identical text. The final "replay:" line is machine-readable;
// the "verify:" line reports the exact-reproduction check (match=true means
// the replayed grant count and sequence equal the live run's).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/replay"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	path := flag.String("trace", "", "trace file recorded by calciomd -record or calciom-load -record")
	policies := flag.String("policies", "", "comma-separated subset to compare: fcfs,interrupt,interfere,delay,dynamic (default: all available)")
	overlap := flag.Float64("delay-overlap", -1, "delay policy overlap fraction (-1: the recording's own, or 0.5)")
	fsMiBps := flag.Float64("fs-mibps", 0, "override the performance model's file-system bandwidth (enables delay/dynamic on model-free traces)")
	nicMiBps := flag.Float64("proc-nic-mibps", 0, "override the performance model's per-core injection bandwidth")
	apps := flag.Bool("apps", false, "print per-application rows for every policy")
	width := flag.Int("width", 40, "bar chart width")
	allowTrunc := flag.Bool("allow-truncated", false, "accept a truncated trace (crashed recorder): read up to the torn tail, report the truncation point, verify the grant sequence as a prefix")
	jsonOut := flag.Bool("json", false, "emit the comparison as one JSON document (per-policy objects with the text table's fields plus wait histograms) instead of text")
	flag.Parse()
	if *path == "" && flag.NArg() == 1 {
		*path = flag.Arg(0)
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "calciom-replay: -trace is required")
		os.Exit(2)
	}

	load := trace.Load
	if *allowTrunc {
		load = trace.LoadLenient
	}
	tr, err := load(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *fsMiBps > 0 {
		tr.Header.FSMiBps = *fsMiBps
	}
	if *nicMiBps > 0 {
		tr.Header.ProcNICMiBps = *nicMiBps
	}

	first, last := tr.Span()
	sessions := 0
	for _, ev := range tr.Events {
		if ev.Type == trace.EvRegister {
			sessions++
		}
	}
	if !*jsonOut {
		fmt.Printf("trace: path=%s source=%s policy=%s events=%d sessions=%d span=%.3fs dropped=%d\n",
			*path, tr.Header.Source, tr.Header.Policy, len(tr.Events), sessions, last-first, tr.Dropped)
		if tr.Truncated {
			fmt.Printf("trace: TRUNCATED after event %d (recorder died mid-write; analyzing the surviving prefix)\n",
				len(tr.Events))
		}
	}

	// Exact-reproduction check: daemon traces carry the recorded grant
	// sequence; replaying under the recording policy must reproduce it.
	var verified *replay.VerifyResult
	if tr.Header.Source == trace.SourceDaemon {
		v, err := replay.Verify(tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		verified = &v
		if !*jsonOut {
			fmt.Printf("verify: policy=%s grants=%d arbitrations=%d flips=%d match=%v\n",
				tr.Header.Policy, v.GrantsServed, v.Arbitrations, len(v.Flips), v.Match)
			if len(v.Shards) > 1 {
				// Sharded recording: the check is per storage target (each
				// target's grant sequence is its own serialized order).
				for _, sh := range v.Shards {
					fmt.Printf("verify-target: target=%s grants=%d flips=%d match=%v\n",
						sh.Target, sh.GrantsServed, sh.Flips, sh.Match)
				}
			}
		}
		if !v.Match {
			fmt.Fprintf(os.Stderr, "calciom-replay: replay diverged from recording: %s\n", v.Mismatch)
			os.Exit(1)
		}
	} else if !*jsonOut {
		fmt.Printf("verify: skipped (client-side capture has no authoritative grant sequence)\n")
	}

	cands := replay.StandardPolicies(tr.Header, *overlap)
	if *policies != "" {
		cands = filterPolicies(cands, *policies)
		if len(cands) == 0 {
			fmt.Fprintf(os.Stderr, "calciom-replay: no known policy in %q\n", *policies)
			os.Exit(2)
		}
	}
	c, err := replay.Compare(tr, cands)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		doc := jsonDoc{
			Trace: jsonTrace{
				Path: *path, Source: string(tr.Header.Source), Policy: tr.Header.Policy,
				Events: len(tr.Events), Sessions: sessions, SpanS: last - first,
				Dropped: tr.Dropped, Truncated: tr.Truncated,
			},
			Recording: c.Recording,
			Best:      c.Outcomes[c.Best].Policy,
		}
		if verified != nil {
			doc.Verify = &jsonVerify{
				Policy: tr.Header.Policy, Grants: verified.GrantsServed,
				Arbitrations: verified.Arbitrations, Flips: len(verified.Flips),
				Match: verified.Match,
			}
		}
		for i := range c.Outcomes {
			o := &c.Outcomes[i]
			p := jsonPolicy{
				Policy: o.Policy, Best: i == c.Best,
				Grants: o.GrantsServed, Unserved: o.Unserved, Aborted: o.Aborted,
				WaitTotalS: o.TotalWaitS, WaitP50S: o.WaitPercentile(50),
				WaitP99S: o.WaitPercentile(99), WaitMaxS: o.MaxWait(),
				ConvoyWaitS: o.ConvoyWaitS, ProtocolWaitS: o.ProtocolWaitS,
				OverlapS: o.OverlapS, SumInterference: o.SumInterference,
				CPUSecondsWasted: o.CPUSecondsWasted,
				WaitHist:         o.WaitHist(),
			}
			if *apps {
				for _, a := range o.Apps {
					p.Apps = append(p.Apps, jsonApp{
						Name: a.Name, Target: a.Target, Cores: a.Cores,
						Phases: a.Phases, Grants: a.Grants, IOTimeS: a.IOTimeS,
						WaitS: a.WaitS, ConvoyWaitS: a.ConvoyWaitS, ProtocolWaitS: a.ProtocolWaitS,
					})
				}
			}
			doc.Policies = append(doc.Policies, p)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Println()
	fmt.Printf("%-22s %7s %5s %5s %10s %10s %10s %10s %10s %10s %8s %10s\n",
		"policy", "grants", "uns", "abrt", "wait_tot", "wait_p99", "wait_max", "convoy", "protocol", "overlap", "sumI", "cpu_sec")
	for i := range c.Outcomes {
		o := &c.Outcomes[i]
		mark := " "
		if i == c.Best {
			mark = "*"
		}
		fmt.Printf("%-21s%s %7d %5d %5d %9.3fs %9.4fs %9.4fs %9.3fs %9.3fs %9.3fs %8.3f %10.1f\n",
			o.Policy, mark, o.GrantsServed, o.Unserved, o.Aborted, o.TotalWaitS,
			o.WaitPercentile(99), o.MaxWait(), o.ConvoyWaitS, o.ProtocolWaitS,
			o.OverlapS, o.SumInterference, o.CPUSecondsWasted)
	}
	fmt.Println()

	labels := make([]string, len(c.Outcomes))
	values := make([]float64, len(c.Outcomes))
	for i := range c.Outcomes {
		labels[i] = c.Outcomes[i].Policy
		values[i] = c.Outcomes[i].CPUSecondsWasted
	}
	fmt.Print(textplot.Bar("estimated CPU-seconds wasted by policy (lower is better)", labels, values, *width))
	fmt.Println()

	if *apps {
		for i := range c.Outcomes {
			o := &c.Outcomes[i]
			fmt.Printf("apps under %s:\n", o.Policy)
			fmt.Printf("  %-24s %6s %7s %7s %10s %10s %10s %10s\n",
				"app", "cores", "phases", "grants", "io_s", "wait_s", "convoy_s", "proto_s")
			for _, a := range o.Apps {
				fmt.Printf("  %-24s %6d %7d %7d %10.3f %10.3f %10.3f %10.3f\n",
					a.Name, a.Cores, a.Phases, a.Grants, a.IOTimeS, a.WaitS, a.ConvoyWaitS, a.ProtocolWaitS)
			}
			fmt.Println()
		}
	}

	best := &c.Outcomes[c.Best]
	fmt.Printf("replay: trace=%s recording=%s policies=%d best=%s cpu_sec=%.3f wait_s=%.3f overlap_s=%.3f unserved=%d\n",
		*path, c.Recording, len(c.Outcomes), best.Policy, best.CPUSecondsWasted,
		best.TotalWaitS, best.OverlapS, best.Unserved)
}

// The -json document: one object per policy carrying the text table's
// fields (plus the wait histogram in the daemon's bucket layout), wrapped
// with the trace/verify context the text header lines report.
type jsonDoc struct {
	Trace     jsonTrace    `json:"trace"`
	Verify    *jsonVerify  `json:"verify,omitempty"`
	Recording string       `json:"recording"`
	Best      string       `json:"best"`
	Policies  []jsonPolicy `json:"policies"`
}

type jsonTrace struct {
	Path      string  `json:"path"`
	Source    string  `json:"source"`
	Policy    string  `json:"policy"`
	Events    int     `json:"events"`
	Sessions  int     `json:"sessions"`
	SpanS     float64 `json:"span_s"`
	Dropped   uint64  `json:"dropped"`
	Truncated bool    `json:"truncated,omitempty"`
}

type jsonVerify struct {
	Policy       string `json:"policy"`
	Grants       uint64 `json:"grants"`
	Arbitrations uint64 `json:"arbitrations"`
	Flips        int    `json:"flips"`
	Match        bool   `json:"match"`
}

type jsonPolicy struct {
	Policy           string     `json:"policy"`
	Best             bool       `json:"best"`
	Grants           uint64     `json:"grants"`
	Unserved         int        `json:"unserved"`
	Aborted          int        `json:"aborted"`
	WaitTotalS       float64    `json:"wait_total_s"`
	WaitP50S         float64    `json:"wait_p50_s"`
	WaitP99S         float64    `json:"wait_p99_s"`
	WaitMaxS         float64    `json:"wait_max_s"`
	ConvoyWaitS      float64    `json:"convoy_wait_s"`
	ProtocolWaitS    float64    `json:"protocol_wait_s"`
	OverlapS         float64    `json:"overlap_s"`
	SumInterference  float64    `json:"sum_interference"`
	CPUSecondsWasted float64    `json:"cpu_seconds_wasted"`
	WaitHist         *wire.Hist `json:"wait_hist"`
	Apps             []jsonApp  `json:"apps,omitempty"`
}

type jsonApp struct {
	Name          string  `json:"name"`
	Target        string  `json:"target,omitempty"`
	Cores         int     `json:"cores"`
	Phases        int     `json:"phases"`
	Grants        uint64  `json:"grants"`
	IOTimeS       float64 `json:"io_time_s"`
	WaitS         float64 `json:"wait_s"`
	ConvoyWaitS   float64 `json:"convoy_wait_s"`
	ProtocolWaitS float64 `json:"protocol_wait_s"`
}

// filterPolicies keeps the candidates whose family name (the part before
// any parenthesis) appears in the comma-separated list.
func filterPolicies(cands []replay.Named, list string) []replay.Named {
	want := map[string]bool{}
	for _, p := range strings.Split(list, ",") {
		want[strings.TrimSpace(p)] = true
	}
	var out []replay.Named
	for _, c := range cands {
		fam := c.Name
		if i := strings.IndexByte(fam, '('); i >= 0 {
			fam = fam[:i]
		}
		if want[fam] {
			out = append(out, c)
		}
	}
	return out
}
