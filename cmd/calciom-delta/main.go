// Command calciom-delta runs a custom two-application ∆-graph experiment:
// pick a platform, application sizes, a workload, and coordination policies,
// sweep the start offset dt, and print the measured I/O times as a table and
// an ASCII plot.
//
// Example:
//
//	calciom-delta -platform rennes -procs-a 744 -procs-b 24 \
//	    -mib-per-proc 16 -pattern strided -policies interfere,fcfs,interrupt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/experiments"
	"repro/internal/ior"
	"repro/internal/textplot"
)

const miB = int64(1) << 20

func main() {
	cfgFile := flag.String("config", "", "JSON scenario file (overrides platform/app flags; see examples/scenario.json)")
	platform := flag.String("platform", "rennes", "platform: rennes | nancy | surveyor")
	procsA := flag.Int("procs-a", 336, "processes of application A")
	procsB := flag.Int("procs-b", 336, "processes of application B")
	mibPerProc := flag.Int64("mib-per-proc", 16, "MiB written per process")
	pattern := flag.String("pattern", "contiguous", "pattern: contiguous | strided")
	policies := flag.String("policies", "interfere,fcfs", "comma-separated: interfere|fcfs|interrupt|dynamic|delay")
	dtMin := flag.Float64("dt-min", -15, "minimum dt (seconds)")
	dtMax := flag.Float64("dt-max", 15, "maximum dt (seconds)")
	points := flag.Int("points", 21, "sweep points")
	factors := flag.Bool("factors", false, "plot interference factors instead of times")
	flag.Parse()

	var sc delta.Scenario
	if *cfgFile != "" {
		var err error
		sc, err = config.Load(*cfgFile)
		if err != nil {
			fatalf("%v", err)
		}
		if len(sc.Apps) != 2 {
			fatalf("config must define exactly 2 apps for a ∆-graph, got %d", len(sc.Apps))
		}
		runSweeps(sc, *policies, *dtMin, *dtMax, *points, *factors)
		return
	}

	var coresPerNode int
	sc, coresPerNode = pickPlatform(*platform)

	w := ior.Workload{
		BlockSize:     2 * miB,
		BlocksPerProc: int(*mibPerProc / 2),
		CB:            ior.CollectiveBuffering{BufBytes: 16 * miB},
	}
	switch *pattern {
	case "contiguous":
		w.Pattern = ior.Contiguous
		w.BlockSize = *mibPerProc * miB
		w.BlocksPerProc = 1
		w.ReqBytes = 2 * miB
	case "strided":
		w.Pattern = ior.Strided
	default:
		fatalf("unknown pattern %q", *pattern)
	}

	sc.Apps = []delta.AppSpec{
		{Name: "A", Procs: *procsA, Nodes: nodes(*procsA, coresPerNode), W: w, Gran: ior.PerRound},
		{Name: "B", Procs: *procsB, Nodes: nodes(*procsB, coresPerNode), W: w, Gran: ior.PerRound},
	}
	fmt.Printf("platform=%s A=%d procs B=%d procs %s %d MiB/proc\n\n",
		sc.Name, *procsA, *procsB, *pattern, *mibPerProc)
	runSweeps(sc, *policies, *dtMin, *dtMax, *points, *factors)
}

// runSweeps sweeps every requested policy and prints tables plus one plot.
func runSweeps(sc delta.Scenario, policies string, dtMin, dtMax float64, points int, factors bool) {
	dts := make([]float64, points)
	for i := range dts {
		dts[i] = dtMin + (dtMax-dtMin)*float64(i)/float64(points-1)
	}

	var plotSeries []textplot.Series
	for _, pname := range strings.Split(policies, ",") {
		factory, ok := pickPolicy(strings.TrimSpace(pname))
		if !ok {
			fatalf("unknown policy %q", pname)
		}
		s := sc.Sweep(factory, dts)
		fmt.Printf("policy %-12s soloA=%.3fs soloB=%.3fs\n", s.Policy, s.SoloA, s.SoloB)
		fmt.Printf("%8s  %10s  %10s  %8s  %8s\n", "dt", "timeA", "timeB", "factorA", "factorB")
		for i := range dts {
			fmt.Printf("%8.2f  %10.3f  %10.3f  %8.3f  %8.3f\n",
				dts[i], s.TimeA[i], s.TimeB[i], s.FactorA[i], s.FactorB[i])
		}
		fmt.Println()
		ya, yb := s.TimeA, s.TimeB
		if factors {
			ya, yb = s.FactorA, s.FactorB
		}
		plotSeries = append(plotSeries,
			textplot.Series{Name: "A/" + s.Policy, Y: ya},
			textplot.Series{Name: "B/" + s.Policy, Y: yb},
		)
	}

	ylabel := "write time (s)"
	if factors {
		ylabel = "interference factor"
	}
	fmt.Println(textplot.Line("∆-graph: "+ylabel+" vs dt", dts, plotSeries, 72, 18))
}

func pickPlatform(name string) (delta.Scenario, int) {
	switch name {
	case "rennes":
		return experiments.RennesPlatform(), experiments.RennesCoresPerNode
	case "nancy":
		return experiments.NancyPlatform(false), experiments.NancyCoresPerNode
	case "surveyor":
		return experiments.SurveyorPlatform(), experiments.SurveyorCoresPerNode
	}
	fatalf("unknown platform %q", name)
	return delta.Scenario{}, 0
}

func pickPolicy(name string) (delta.PolicyFactory, bool) {
	switch name {
	case "interfere", "uncoordinated":
		return delta.Uncoordinated, true
	case "fcfs":
		return delta.FCFS, true
	case "interrupt":
		return delta.Interrupt, true
	case "dynamic":
		return delta.Dynamic(core.CPUSecondsWasted{}, false), true
	case "delay":
		return delta.Delay(0.5), true
	}
	return nil, false
}

func nodes(procs, perNode int) int {
	n := procs / perNode
	if n < 1 {
		n = 1
	}
	return n
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
