// Dynamicpolicy walks through the paper's §IV-D decision rule on the
// Fig. 10/11 scenario: application A writes four files, application B one;
// CALCioM, minimizing f = Σ N_X·T_X, interrupts A while it still has more
// remaining work than B's whole access, and serializes B behind A otherwise.
// The decision threshold sits at dt = T_A(alone) − T_B(alone).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/experiments"
	"repro/internal/ior"
	"repro/internal/textplot"
)

const miB = int64(1) << 20

func scenario() delta.Scenario {
	sc := experiments.SurveyorPlatform()
	mk := func(files int) ior.Workload {
		return ior.Workload{
			Pattern:       ior.Contiguous,
			BlockSize:     4 * miB,
			BlocksPerProc: 1,
			Files:         files,
			ReqBytes:      1 * miB,
		}
	}
	sc.Apps = []delta.AppSpec{
		{Name: "A", Procs: 2048, Nodes: 512, W: mk(4), Gran: ior.PerRound},
		{Name: "B", Procs: 2048, Nodes: 512, W: mk(1), Gran: ior.PerRound},
	}
	return sc
}

func main() {
	sc := scenario()
	soloA, soloB := sc.Solo(0), sc.Solo(1)
	fmt.Printf("A writes 4 files (solo %.1fs), B writes 1 (solo %.1fs)\n", soloA, soloB)
	fmt.Printf("§IV-D rule: interrupt A iff dt < T_A(alone) - T_B(alone) = %.1fs\n\n", soloA-soloB)

	// Show what the dynamic policy decides at several offsets.
	for _, dt := range []float64{1, 3, 5, 7} {
		res := sc.Run(delta.Dynamic(core.CPUSecondsWasted{}, false), []float64{0, dt})
		decision := "serialized B after A (FCFS)"
		for _, d := range res.Decisions {
			if len(d.Allowed) == 1 && d.Allowed[0] == "B" {
				decision = "interrupted A for B"
				break
			}
		}
		fmt.Printf("dt=%.0fs: %-28s A=%.2fs B=%.2fs\n", dt, decision, res.IOTime[0], res.IOTime[1])
	}

	// The Fig. 11 picture: machine-wide CPU-seconds per core wasted in I/O.
	dts := make([]float64, 41)
	for i := range dts {
		dts[i] = -10 + float64(i)
	}
	interfere := sc.Sweep(delta.Uncoordinated, dts)
	dynamic := sc.Sweep(delta.Dynamic(core.CPUSecondsWasted{}, false), dts)

	fmt.Println()
	fmt.Println(textplot.Line(
		"CPU seconds per core wasted in I/O (lower is better)",
		dts,
		[]textplot.Series{
			{Name: "without CALCioM", Y: interfere.CPUPerCore},
			{Name: "with CALCioM", Y: dynamic.CPUPerCore},
		}, 72, 14))

	var saved float64
	for i := range dts {
		saved += interfere.CPUPerCore[i] - dynamic.CPUPerCore[i]
	}
	fmt.Printf("average saving across the sweep: %.2f CPU-seconds per core\n",
		saved/float64(len(dts)))
}
