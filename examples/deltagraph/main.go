// Deltagraph reproduces the paper's core visualization — the ∆-graph — for
// an uneven pair of applications on the Grid'5000 Rennes platform: a
// 744-core application against a 24-core one, under pure interference and
// under the two static coordination policies.
//
// The output shows the paper's headline effect: the small application's
// interference factor reaches ~10-14x under interference or FCFS, while
// interruption keeps it at ~1 at negligible cost for the big one.
package main

import (
	"fmt"

	"repro/internal/delta"
	"repro/internal/experiments"
	"repro/internal/ior"
	"repro/internal/textplot"
)

func main() {
	const miB = int64(1) << 20

	sc := experiments.RennesPlatform()
	w := ior.Workload{
		Pattern:       ior.Strided,
		BlockSize:     2 * miB,
		BlocksPerProc: 8, // 16 MiB per process
		CB:            ior.CollectiveBuffering{BufBytes: 16 * miB},
	}
	sc.Apps = []delta.AppSpec{
		{Name: "big", Procs: 744, Nodes: 31, W: w, Gran: ior.PerRound},
		{Name: "small", Procs: 24, Nodes: 1, W: w, Gran: ior.PerRound},
	}

	dts := make([]float64, 26)
	for i := range dts {
		dts[i] = -5 + float64(i)
	}

	interfere := sc.Sweep(delta.Uncoordinated, dts)
	fcfs := sc.Sweep(delta.FCFS, dts)
	irq := sc.Sweep(delta.Interrupt, dts)

	fmt.Printf("Rennes: big=744 procs, small=24 procs, 16 MiB/proc strided\n")
	fmt.Printf("solo: big=%.2fs small=%.2fs\n\n", interfere.SoloA, interfere.SoloB)

	fmt.Println(textplot.Line(
		"small app interference factor vs dt (dt>0: small arrives second)",
		dts,
		[]textplot.Series{
			{Name: "interfere", Y: interfere.FactorB},
			{Name: "fcfs", Y: fcfs.FactorB},
			{Name: "interrupt", Y: irq.FactorB},
		}, 72, 16))

	fmt.Println(textplot.Line(
		"big app interference factor vs dt",
		dts,
		[]textplot.Series{
			{Name: "interfere", Y: interfere.FactorA},
			{Name: "fcfs", Y: fcfs.FactorA},
			{Name: "interrupt", Y: irq.FactorA},
		}, 72, 12))

	worst := func(xs []float64) float64 {
		m := 0.0
		for _, v := range xs {
			if v > m {
				m = v
			}
		}
		return m
	}
	fmt.Printf("worst small-app factor: interfere %.1f, fcfs %.1f, interrupt %.2f\n",
		worst(interfere.FactorB), worst(fcfs.FactorB), worst(irq.FactorB))
	fmt.Printf("worst big-app factor under interruption: %.3f (the 'negligible cost')\n",
		worst(irq.FactorA))
}
