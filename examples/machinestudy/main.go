// Machinestudy replays a day of an Intrepid-like job trace against one
// shared parallel file system — the paper's two-application analysis pushed
// to machine scale, where tens of jobs of wildly different sizes coordinate
// through a single CALCioM layer.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/machine"
	"repro/internal/swf"
	"repro/internal/textplot"
)

func main() {
	tr := swf.Generate(swf.GenConfig{Seed: 42, Days: 1})
	cfg := machine.IntrepidConfig()
	cfg.FS.Servers = 32 // undersized storage: heavy interference regime
	cfg.BytesPerCore = 8 << 20
	cfg.PhasePeriod = 300
	cfg.MaxJobs = 150

	fmt.Printf("replaying %d jobs (1 day, Intrepid-like) against a %d-server file system\n\n",
		cfg.MaxJobs, cfg.FS.Servers)

	runs := []struct {
		name    string
		factory delta.PolicyFactory
	}{
		{"uncoordinated", delta.Uncoordinated},
		{"fcfs", delta.FCFS},
		{"dynamic(cpu-s)", delta.Dynamic(core.CPUSecondsWasted{}, true)},
	}
	var labels []string
	var overheads []float64
	for _, r := range runs {
		res := machine.Run(cfg, tr, r.factory)
		fmt.Println(res)
		labels = append(labels, r.name)
		overheads = append(overheads, 100*res.Overhead())
	}

	fmt.Println()
	fmt.Println(textplot.Bar("CPU-seconds wasted beyond the interference-free bound (%)",
		labels, overheads, 40))
	fmt.Println("the uncoordinated machine burns over twice the I/O CPU-time it needs;")
	fmt.Println("cross-application coordination recovers most of it.")
}
