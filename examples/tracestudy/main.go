// Tracestudy reproduces the paper's motivation (Section II): on a real
// machine, how often do applications actually overlap their I/O? It
// generates the calibrated Intrepid-like workload trace, reports the job
// size and concurrency distributions of Fig. 1, and evaluates the §II-B
// probability bound for several I/O intensities.
package main

import (
	"fmt"

	"repro/internal/swf"
	"repro/internal/textplot"
)

func main() {
	tr := swf.Generate(swf.GenConfig{Seed: 20090101, Days: 243})
	fmt.Printf("synthetic Intrepid-like trace: %d jobs over 8 months\n\n", len(tr.Jobs))

	// Fig. 1a: job sizes.
	buckets := swf.SizeDistribution(tr)
	labels := make([]string, len(buckets))
	shares := make([]float64, len(buckets))
	for i, b := range buckets {
		labels[i] = fmt.Sprintf("<=%d", b.Cores)
		shares[i] = 100 * b.Share
	}
	fmt.Println(textplot.Bar("% of jobs per size bucket (Fig. 1a)", labels, shares, 40))
	var at2048 float64
	for _, b := range buckets {
		if b.Cores == 2048 {
			at2048 = 100 * b.CDF
		}
	}
	fmt.Printf("jobs at <= 2048 cores: %.1f%% (paper: ~50%%)\n\n", at2048)

	// Fig. 1b: concurrency.
	dist := swf.ConcurrencyDistribution(tr)
	xs := make([]float64, len(dist))
	for k := range dist {
		xs[k] = float64(k)
	}
	fmt.Println(textplot.Line("proportion of time vs concurrent jobs (Fig. 1b)", xs,
		[]textplot.Series{{Name: "P(X=k)", Y: dist}}, 64, 12))

	// §II-B: the probability that another application is doing I/O.
	fmt.Println("P(at least one app doing I/O) as E[µ] varies:")
	for _, mu := range []float64{0.01, 0.02, 0.05, 0.10, 0.20} {
		fmt.Printf("  E[µ] = %4.0f%%  ->  P = %5.1f%%\n", 100*mu, 100*swf.ProbOtherDoingIO(tr, mu))
	}
	fmt.Println("\npaper: with E[µ] as small as 5%, P ≈ 64% — interference is the")
	fmt.Println("common case, which motivates cross-application coordination.")
}
