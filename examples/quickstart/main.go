// Quickstart: two applications share a simulated parallel file system, and
// CALCioM's dynamic policy decides — from the information the applications
// themselves share — whether the newcomer should wait (FCFS) or interrupt
// the application already writing.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/sim"
)

func main() {
	const miB = int64(1) << 20

	// A deterministic discrete-event engine drives everything.
	eng := sim.NewEngine()

	// A PVFS-like file system: 4 servers, 1 MiB stripes, 1 GiB/s each.
	fs := pfs.New(eng, pfs.Config{
		Servers:     4,
		StripeBytes: 1 * miB,
		ServerBW:    float64(1 << 30),
	})

	// The platform: per-core injection bandwidth and collective-comm costs.
	plat := &mpi.Platform{
		Eng: eng, FS: fs,
		ProcNIC:       3 * float64(miB),
		CommBWPerProc: 1.5 * float64(miB),
		CommAlpha:     2e-6,
	}

	// The CALCioM layer, minimizing CPU-seconds wasted in I/O (§IV-D).
	model := &core.PerfModel{FSBandwidth: fs.AggregateBW(), ProcNIC: plat.ProcNIC}
	layer := core.NewLayer(eng, core.DynamicPolicy{
		Metric: core.CPUSecondsWasted{},
		Model:  model,
	}, 1e-3)

	// Application A: 2048 cores, 4 files of 4 MiB per process.
	appA := plat.NewApp("A", 2048, 512)
	runnerA := ior.NewRunner(appA, ior.Workload{
		Pattern:       ior.Contiguous,
		BlockSize:     4 * miB,
		BlocksPerProc: 1,
		Files:         4,
		ReqBytes:      1 * miB,
	}, core.NewSession(layer.Register("A", 2048)), ior.PerRound)

	// Application B: same size, a single file — it shows up 3 seconds
	// into A's write phase.
	appB := plat.NewApp("B", 2048, 512)
	runnerB := ior.NewRunner(appB, ior.Workload{
		Pattern:       ior.Contiguous,
		BlockSize:     4 * miB,
		BlocksPerProc: 1,
		Files:         1,
		ReqBytes:      1 * miB,
	}, core.NewSession(layer.Register("B", 2048)), ior.PerRound)

	runnerA.Start(0)
	runnerB.Start(3)
	eng.Run()

	fmt.Printf("A: observed I/O time %.3fs\n", runnerA.Stats.TotalIOTime())
	fmt.Printf("B: observed I/O time %.3fs\n", runnerB.Stats.TotalIOTime())
	fmt.Println("\nlast arbitration decisions:")
	log := layer.Log()
	if len(log) > 6 {
		log = log[len(log)-6:]
	}
	for _, d := range log {
		fmt.Printf("  t=%7.3f allowed=%v  %s\n", d.Time, d.Allowed, d.Reason)
	}
}
