// Package repro is a from-scratch Go reproduction of
//
//	CALCioM: Mitigating I/O Interference in HPC Systems through
//	Cross-Application Coordination — Dorier, Antoniu, Ross, Kimpe,
//	Ibrahim. IPDPS 2014.
//
// The library lives under internal/: a deterministic discrete-event engine
// (sim), a fluid contention model (fluid), storage targets with write-back
// caches (disk), a striped parallel file system (pfs), an MPI-like
// application model (mpi), the IOR-derived benchmark (ior), the CALCioM
// coordination layer itself (core), machine-wide efficiency metrics
// (metrics), the ∆-graph harness (delta), SWF workload-trace tooling (swf),
// and the per-figure experiment reproductions (experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. bench_test.go in this
// directory regenerates every table and figure of the paper's evaluation.
package repro
