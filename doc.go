// Package repro is a from-scratch Go reproduction of
//
//	CALCioM: Mitigating I/O Interference in HPC Systems through
//	Cross-Application Coordination — Dorier, Antoniu, Ross, Kimpe,
//	Ibrahim. IPDPS 2014.
//
// The library lives under internal/: a deterministic discrete-event engine
// (sim), a fluid contention model (fluid), storage targets with write-back
// caches (disk), a striped parallel file system (pfs), an MPI-like
// application model (mpi), the IOR-derived benchmark (ior), the CALCioM
// coordination layer itself (core), machine-wide efficiency metrics
// (metrics), the ∆-graph harness (delta), SWF workload-trace tooling (swf),
// the per-figure experiment reproductions (experiments), the live
// coordination daemon (wire, server, client), and the coordination-trace
// record/replay subsystem (trace, replay) that re-arbitrates captured
// daemon traffic offline under any policy.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. bench_test.go in this
// directory regenerates every table and figure of the paper's evaluation.
//
// # Architecture: simulator mode and daemon mode
//
// The coordination layer runs in two deployments sharing one arbitration
// core (core.Arbiter: AppView construction, the policy call, decision
// application onto per-app authorization):
//
//   - Simulator mode: core.Layer inside the discrete-event engine. Each
//     application is a simulated process; coordination messages travel with
//     a configured latency; the ∆-graph harness and the figure
//     reproductions run here.
//   - Daemon mode: calciomd (internal/server) serves the same protocol
//     over TCP. Per-connection reader/writer goroutines funnel requests
//     into a single arbitration goroutine — no locks on the hot path, and
//     decisions are deterministic given a serialized request order.
//     internal/client mirrors the Coordinator/Session API so driver code
//     is the same shape in both modes, and calciom-load replays SWF traces
//     or synthetic phase mixes over N concurrent connections.
//
// The wire protocol (internal/wire) is length-prefixed JSON; one Response
// answers every Request (the Wait response is deferred until arbitration
// grants access), plus unsolicited grant/revoke pushes:
//
//	register  App, Cores     introduce the application
//	prepare   Info           stack MPI_Info-style hints (bytes_total, ...)
//	complete  —              unstack the most recent prepare
//	inform    BytesDone?     open/continue an I/O phase, trigger arbitration
//	progress  BytesDone      report progress only; no state change
//	check     —              poll authorization, never blocks
//	wait      —              block until authorized (deferred response)
//	release   BytesDone?     end one access step
//	end       —              end the I/O phase
//	stats     —              LASSi-style live metrics snapshot
//
// Quickstart (two terminals):
//
//	go run ./cmd/calciomd -listen 127.0.0.1:9595 -policy fcfs
//	go run ./cmd/calciom-load -addr 127.0.0.1:9595 -clients 64 -phases 4
//
// # Trace record and replay
//
// The daemon can record everything its arbitration goroutine did —
// state-mutating requests, explicit re-arbitrations, and the authorization
// flips they produced — into a compact, versioned, append-only event log
// (internal/trace), and internal/replay re-drives such a log through
// core.Arbiter on a virtual clock. That closes the paper's loop as an
// observe → replay → decide pipeline: record live traffic once, then ask
// which coordination strategy fits it, without re-running the applications.
//
// Quickstart (three terminals):
//
//	go run ./cmd/calciomd -listen 127.0.0.1:9595 -record run.trace   # 1: record
//	go run ./cmd/calciom-load -addr 127.0.0.1:9595 -clients 64      # 2: traffic
//	go run ./cmd/calciom-replay -trace run.trace                    # 3: decide
//
// (calciom-load -record captures the same traffic client-side instead, for
// daemons that cannot record.)
//
// The trace format (version 1): a "CALTRACE" magic, a u16 format version,
// a JSON header (source, recording policy, performance-model constants),
// then little-endian records — every record is a u8 type, f64 timestamp
// and u32 session id plus type-specific extras — and a mandatory trailer
// carrying the recorded and dropped counts:
//
//	register    name, cores      session introduced (assigns the id)
//	prepare     sorted info map  stacked MPI_Info-style hints
//	complete    —                hint unstacked
//	inform      bytes done?      phase opened/continued (arbitrates)
//	progress    bytes done       progress only, no arbitration
//	check       —                authorization polled
//	wait        —                wait accepted (immediate or deferred)
//	release     bytes done?      access step ended (arbitrates)
//	end         —                phase ended (arbitrates)
//	unregister  —                session left (disconnect/eviction)
//	recheck     —                arbitration not implied by a request
//	grant       —                outcome: authorization flipped on
//	revoke      —                outcome: authorization flipped off
//
// Versioning rules (authoritative in internal/trace): magic and version
// never move; unknown versions and record types are rejected; additive
// changes bump the version and newer readers accept older files; a file
// without a trailer is reported as truncated, and the trailer's drop count
// marks a trace lossy — replay refuses it rather than silently diverging.
//
// Recording rides the arbitration goroutine without touching its
// guarantees: events travel by value through a fixed-capacity channel to a
// drain goroutine that owns all encoding and file I/O, so the hot path
// neither blocks nor allocates (BenchmarkServerArbitrateRecording: 0
// allocs/op, pinned by TestRecordingStaysAllocFree). Overflow is dropped
// and counted, never waited on — and replay refuses lossy traces rather
// than silently diverging.
//
// Replay has two modes. Verify replays a daemon trace under its own
// recorded policy, re-arbitrating exactly where the recording did, and
// requires the reproduced grant/revoke sequence to match the recorded one
// event for event — exact, because the daemon serializes all coordination
// through one goroutine and the trace captures that serialized order (the
// CI daemon-smoke job records a 64-client burst and asserts the replayed
// grant count and sequence match the live run). What-if replay
// (replay.Under / replay.Compare) re-arbitrates the same arrival pattern
// under any policy, synthesizing delay-policy rechecks on the virtual
// clock, and derives a per-policy comparison: total and tail wait, the
// same convoy-vs-protocol wait decomposition the live wire.Stats reports,
// permitted-interference overlap, and estimated interference factors and
// CPU-seconds wasted under the paper's equal-share stretch model. The
// replay is open-loop (request instants stay where the recording put
// them), so cross-policy numbers are comparative estimates, not absolute
// predictions; calciom-replay prints the comparison with a recommended
// policy and is byte-identical across runs on one trace.
//
// # Performance
//
// The evaluation sweeps thousands of ∆-graph points, each a full
// discrete-event run, so the contention hot path is engineered to be
// index-based and allocation-free in steady state:
//
//   - fabric's global max-min solver (progressive filling) runs on scratch
//     arrays kept on the Fabric, indexed by dense link IDs, with slice
//     memberships and swap-delete instead of maps. One refill is
//     O(B·(F·L̄+L)) for B bottleneck rounds, F active flows crossing L̄
//     links each, and L links; it performs zero allocations, and its fixed
//     iteration order makes float accumulation — and therefore every
//     simulated rate — bit-reproducible across runs and GOMAXPROCS
//     settings.
//   - sim recycles fired/cancelled event records through a free list
//     (handles detach at fire time, so stale Cancels are always safe),
//     runs fire-and-forget zero-delay callbacks through the reusable
//     Post ring, and offers owner-managed reusable Timers for the
//     cancel/reschedule-heavy "next completion" pattern.
//   - fluid's Resource and closed-form Solver reuse their water-fill
//     scratch, and delta.Sweep runs on a fixed worker pool with per-worker
//     scratch.
//
// Benchmark methodology: go test -bench=Fabric -benchmem (micro), and
// BenchmarkDeltaSweepFabric for the macro path (a TrueNetwork ∆-sweep).
// Recorded on a Xeon @ 2.10GHz, go1.24, before → after this rewrite:
//
//	BenchmarkFabricReassign     18684 ns/op  26 allocs/op → 1442 ns/op  0 allocs/op  (13.0x)
//	BenchmarkDeltaSweepFabric   2.62 ms/op  11991 allocs  → 0.61 ms/op  7159 allocs  (4.3x)
//	BenchmarkEngineSchedule     90.7 ns/op  32 B/op       → 57.5 ns/op  16 B/op
//	BenchmarkEnginePost         (new fast path)             8.7 ns/op   0 allocs/op
//	BenchmarkEngineProcSleep    sleep/wake cycle           0 allocs/op
//
// TestReassignSteadyStateAllocFree and the determinism regression tests in
// internal/delta pin these properties in CI.
//
// # Platform reuse
//
// The ∆-graph methodology re-runs one scenario at dozens of start offsets,
// and what-if analytics re-evaluate one platform against many schedules.
// internal/platform makes that cheap: it builds the whole simulated
// platform — engine, optional fabric, pfs servers and stores, mpi apps,
// the coordination layer, the IOR runners — once, and Reset re-arms it for
// the next run instead of rebuilding. platform.Pool caches built platforms
// by spec on one engine (the per-sweep-worker reuse point); delta.RunOn,
// the solo calibrations and the figure harnesses all run through it.
//
// The reuse contract, layer by layer — Reset RETAINS capacity, CLEARS
// logical state:
//
//   - sim.Engine.Reset: retains the event-record free list, the Post ring,
//     the heap backing and the pooled procs (channel + wake timer + bound
//     closures each; the per-body goroutine exits with its body, so an
//     abandoned engine leaks nothing); clears the clock, sequence counter
//     and pending events.
//   - fabric.Fabric.Reset: retains links (and any capacity changes), solver
//     scratch and retired flows (moved to the free list, so Start stops
//     allocating); clears active flows, flow IDs and the progress clock.
//   - fluid.Resource.Reset / disk.Store.Reset: retain water-fill scratch
//     and retired jobs; clear job sets, dirty bytes and fill state, and
//     restore construction-time capacity.
//   - pfs.System.Reset: retains servers, stores, the file table with its
//     cached per-server request-name strings, pooled server requests (with
//     pre-bound completion closures) and pooled wait groups; clears queues
//     and file layout order (File.first is recomputed per Create).
//   - mpi.Platform.Reset: everything is immutable after construction; the
//     call only revalidates invariants.
//   - core.Layer.Reset: retains registrations (and so arrival tie-break
//     order) and the policy; clears protocol states, accounting and the
//     decision log — with fresh backing, so Log slices already handed out
//     stay valid.
//   - ior.Runner.Reset: retains the armed workload (presets fold their
//     defaults in exactly once, at construction) and cached file names;
//     clears per-run statistics, keeping their backing.
//
// Construction order is reproduced exactly on reuse (fabric, then server
// links, then app NICs, then registrations), so dense IDs — and with them
// every float accumulation order — match a fresh build: a reused platform
// is bit-identical to a fresh one, pinned by TestReusedPlatformMatchesFresh
// and the ior event-for-event regression. The payoff is pinned too: from a
// worker's second sweep point on, a TrueNetwork point runs with ZERO
// allocations (TestSweepPointSteadyStateAllocFree, BenchmarkDeltaPointReused):
//
//	BenchmarkDeltaSweepFabric        0.60 ms/op  7077 allocs → 0.32 ms/op  1002 allocs  (7.1x)
//	BenchmarkDeltaSweepFabricDense   3.59 ms/op 43553 allocs → 1.65 ms/op  1002 allocs  (43x, 2.2x time)
//	BenchmarkDeltaPointReused        (new)                     38 µs/op    0 allocs/op
//
// The remaining ~1000 allocations were per-Sweep setup: each call built
// per-worker platforms, solo calibrations and output slices from scratch.
// delta.Sweeper is the persistent executor that keeps them: it owns the
// solo-calibration pool and one platform pool per worker slot, reused
// across sweeps, and SweepInto reuses a caller-owned Series' backing.
// Repeated sweeps of one scenario (parameter studies, the macro
// benchmarks) now pay only the worker goroutines:
//
//	BenchmarkDeltaSweepFabric        0.32 ms/op  1002 allocs → 0.27 ms/op  8 allocs
//	BenchmarkDeltaSweepFabricDense   1.65 ms/op  1002 allocs → 1.60 ms/op  9 allocs
//
// TestSweeperSteadyStateAllocs guards the bound; TestSweeperReuseBitIdentical
// pins that executor reuse stays bit-identical to fresh sweeps.
package repro
