// Package repro is a from-scratch Go reproduction of
//
//	CALCioM: Mitigating I/O Interference in HPC Systems through
//	Cross-Application Coordination — Dorier, Antoniu, Ross, Kimpe,
//	Ibrahim. IPDPS 2014.
//
// The library lives under internal/: a deterministic discrete-event engine
// (sim), a fluid contention model (fluid), storage targets with write-back
// caches (disk), a striped parallel file system (pfs), an MPI-like
// application model (mpi), the IOR-derived benchmark (ior), the CALCioM
// coordination layer itself (core), machine-wide efficiency metrics
// (metrics), the ∆-graph harness (delta), SWF workload-trace tooling (swf),
// and the per-figure experiment reproductions (experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. bench_test.go in this
// directory regenerates every table and figure of the paper's evaluation.
//
// # Performance
//
// The evaluation sweeps thousands of ∆-graph points, each a full
// discrete-event run, so the contention hot path is engineered to be
// index-based and allocation-free in steady state:
//
//   - fabric's global max-min solver (progressive filling) runs on scratch
//     arrays kept on the Fabric, indexed by dense link IDs, with slice
//     memberships and swap-delete instead of maps. One refill is
//     O(B·(F·L̄+L)) for B bottleneck rounds, F active flows crossing L̄
//     links each, and L links; it performs zero allocations, and its fixed
//     iteration order makes float accumulation — and therefore every
//     simulated rate — bit-reproducible across runs and GOMAXPROCS
//     settings.
//   - sim recycles fired/cancelled event records through a free list
//     (handles detach at fire time, so stale Cancels are always safe),
//     runs fire-and-forget zero-delay callbacks through the reusable
//     Post ring, and offers owner-managed reusable Timers for the
//     cancel/reschedule-heavy "next completion" pattern.
//   - fluid's Resource and closed-form Solver reuse their water-fill
//     scratch, and delta.Sweep runs on a fixed worker pool with per-worker
//     scratch.
//
// Benchmark methodology: go test -bench=Fabric -benchmem (micro), and
// BenchmarkDeltaSweepFabric for the macro path (a TrueNetwork ∆-sweep).
// Recorded on a Xeon @ 2.10GHz, go1.24, before → after this rewrite:
//
//	BenchmarkFabricReassign     18684 ns/op  26 allocs/op → 1442 ns/op  0 allocs/op  (13.0x)
//	BenchmarkDeltaSweepFabric   2.62 ms/op  11991 allocs  → 0.61 ms/op  7159 allocs  (4.3x)
//	BenchmarkEngineSchedule     90.7 ns/op  32 B/op       → 57.5 ns/op  16 B/op
//	BenchmarkEnginePost         (new fast path)             8.7 ns/op   0 allocs/op
//	BenchmarkEngineProcSleep    sleep/wake cycle           0 allocs/op
//
// TestReassignSteadyStateAllocFree and the determinism regression tests in
// internal/delta pin these properties in CI.
package repro
