// Package repro is a from-scratch Go reproduction of
//
//	CALCioM: Mitigating I/O Interference in HPC Systems through
//	Cross-Application Coordination — Dorier, Antoniu, Ross, Kimpe,
//	Ibrahim. IPDPS 2014.
//
// The library lives under internal/: a deterministic discrete-event engine
// (sim), a fluid contention model (fluid), storage targets with write-back
// caches (disk), a striped parallel file system (pfs), an MPI-like
// application model (mpi), the IOR-derived benchmark (ior), the CALCioM
// coordination layer itself (core), machine-wide efficiency metrics
// (metrics), the ∆-graph harness (delta), SWF workload-trace tooling (swf),
// the per-figure experiment reproductions (experiments), the live
// coordination daemon (wire, server, client), and the coordination-trace
// record/replay subsystem (trace, replay) that re-arbitrates captured
// daemon traffic offline under any policy.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. bench_test.go in this
// directory regenerates every table and figure of the paper's evaluation.
//
// # Architecture: simulator mode and daemon mode
//
// The coordination layer runs in two deployments sharing one arbitration
// core (core.Arbiter: AppView construction, the policy call, decision
// application onto per-app authorization):
//
//   - Simulator mode: core.Layer inside the discrete-event engine. Each
//     application is a simulated process; coordination messages travel with
//     a configured latency; the ∆-graph harness and the figure
//     reproductions run here.
//   - Daemon mode: calciomd (internal/server) serves the same protocol
//     over TCP, sharded by storage target. Real platforms expose many
//     independent targets (PFS servers, burst buffers) and contention is
//     per target, so a coordination domain is one target: core.ArbiterSet
//     keys one core.Arbiter per target, each owned by its own arbitration
//     goroutine; per-connection reader goroutines route every request to
//     the shard of the target it addresses, a control goroutine owns
//     session lifecycle, and the stats combining layer merges per-target
//     snapshots into the machine-wide wire.Stats (plus a per-target
//     breakdown). There is still no lock on the hot path, each target's
//     decisions are deterministic given that target's serialized request
//     order, and a grant on one target never convoys behind a holder on
//     another. Clients that never name a target run on the single default
//     target "" — the original one-goroutine daemon, byte for byte (one
//     deliberate stats nuance: an application's stats row appears at its
//     first coordination verb, when it attaches to a target's arbiter,
//     rather than at register — registration alone no longer names a
//     coordination domain).
//     internal/client mirrors the Coordinator/Session API (Client.Target
//     scopes a handle to one target) so driver code is the same shape in
//     both modes, and calciom-load replays SWF traces or synthetic phase
//     mixes over N concurrent connections (-targets N spreads phases
//     round-robin across targets).
//
// The wire protocol (internal/wire) is length-prefixed JSON; one Response
// answers every Request (the Wait response is deferred until arbitration
// grants access), plus unsolicited grant/revoke pushes. Every verb but
// stats takes an optional target: on register it sets the session's
// default target, on the coordination verbs it names the storage target
// whose domain the request addresses (empty = that default; responses echo
// the resolved target):
//
//	register  App, Cores, Target?     introduce the application
//	prepare   Info, Target?           stack MPI_Info-style hints (bytes_total, ...)
//	complete  Target?                 unstack the most recent prepare
//	inform    BytesDone?, Target?     open/continue an I/O phase, trigger arbitration
//	progress  BytesDone, Target?      report progress only; no state change
//	check     Target?                 poll authorization, never blocks
//	wait      Target?                 block until authorized (deferred response)
//	release   BytesDone?, Target?     end one access step
//	end       Target?                 end the I/O phase
//	stats     —                       LASSi-style live metrics snapshot
//
// That JSON framing is protocol version 1 and remains the default: a
// client that never negotiates gets today's protocol, byte for byte. A
// client that wants the binary codec (version 2, internal/wirebin) opens
// with a two-byte hello [0xCB, 2] pipelined in front of its first
// request; the daemon sniffs the first byte — a v1 length prefix always
// starts 0x00 because the frame cap is far below 2^24, so 0xCB is
// unambiguous — answers with the same two bytes, and both directions
// switch. An unknown version closes the connection. Negotiation costs no
// extra round trip, and a session keeps its codec for the connection's
// lifetime (a reconnecting client renegotiates on the fresh connection).
//
// The v2 frame is a uvarint payload length (0 and oversize rejected)
// followed by the payload. A request payload is verb (u8: register=1,
// prepare=2, complete=3, inform=4, progress=5, check=6, wait=7,
// release=8, end=9, stats=10), seq (uvarint), a flags byte, then the
// optional fields in fixed order — target (flag 1), bytes_done (flag 2,
// IEEE-754 bits little-endian), the prepare info map (flag 4, count then
// key/value pairs, keys sorted ascending so encoding is canonical) and
// the register extras app+cores (flag 8, only valid on register).
// Strings are uvarint length + bytes. A response payload is type (u8:
// resp=1, grant=2, revoke=3), seq (uvarint), flags (ok=1, authorized=2,
// err=4, code=8, target=16, stats=32) and the present fields in that
// order; the stats snapshot crosses as a JSON blob (cold path, not worth
// a schema). Decoders reject unknown verbs, unknown flag bits and
// trailing bytes, and intern the small recurring strings (targets, app
// names, error codes), so steady-state encode and decode allocate
// nothing on either side of the wire — the internal/trace discipline
// applied to the protocol. On this workload's grant cycle the wire cost
// drops from ~120 to ~16 bytes per request (see ROADMAP's performance
// table). Per-connection machinery rides along: reused read/write
// buffers, write coalescing (one syscall per flush when the response
// queue drains), -accept-loops listener sharding and -sock-buffer kernel
// socket buffer tuning.
//
// Version 3 is the mux extension of the binary codec: one physical
// connection carries many logical sessions, each identified by a stream
// id. The negotiation hello is the same two bytes with the version bumped:
//
//	[0xCB, 1]   never sent — absence of a hello IS version 1 (JSON)
//	[0xCB, 2]   binary codec, one session per connection
//	[0xCB, 3]   binary codec + session multiplexing
//	other       unknown version or magic: connection closed
//
// A mux frame is the same uvarint-length-prefixed v2 frame whose payload
// gains one field up front: a uvarint stream id (>= 1; stream 0 is
// rejected in both directions), followed by the unchanged v2 request or
// response payload. Streams are opened implicitly — the first frame
// naming an unknown stream id creates that session daemon-side, with the
// same register deadline a fresh connection gets — and each stream is an
// ordinary session to the arbitration core: per-stream seq spaces,
// grant/revoke pushes, grace windows and resume-by-incarnation all work
// per stream. The transport is where the win is: one reader demuxes all
// inbound frames, and one shared write loop group-commits — each wakeup
// drains every response queued across all streams into one buffered
// writer and flushes once, so K concurrent grant cycles cost ~1 write
// syscall instead of K (client-side writes batch the same way). The v1
// and v2 protocols are untouched: a client that negotiates 2 or nothing
// gets the previous framing byte for byte. client.DialMux is the client
// half (Mux.Client hands out logical *Client streams sharing one socket),
// calciom-load -mux-conns M drives a whole fleet over M sockets, and
// BenchmarkSocketGrantsMux / BenchmarkSocketGrants10k measure it (see
// ROADMAP's performance table: ~3x grant throughput at 256 sessions,
// 10240 live sessions on 64 sockets in-process).
//
// Quickstart (two terminals):
//
//	go run ./cmd/calciomd -listen 127.0.0.1:9595 -policy fcfs
//	go run ./cmd/calciom-load -addr 127.0.0.1:9595 -clients 64 -phases 4 -targets 4
//
// # Trace record and replay
//
// The daemon can record everything its arbitration goroutine did —
// state-mutating requests, explicit re-arbitrations, and the authorization
// flips they produced — into a compact, versioned, append-only event log
// (internal/trace), and internal/replay re-drives such a log through
// core.Arbiter on a virtual clock. That closes the paper's loop as an
// observe → replay → decide pipeline: record live traffic once, then ask
// which coordination strategy fits it, without re-running the applications.
//
// Quickstart (four terminals):
//
//	go run ./cmd/calciomd -listen 127.0.0.1:9595 -record run.trace -admin 127.0.0.1:9596   # 1: record
//	go run ./cmd/calciom-load -addr 127.0.0.1:9595 -clients 64      # 2: traffic
//	curl 127.0.0.1:9596/metrics                                     # 3: observe
//	go run ./cmd/calciom-replay -trace run.trace                    # 4: decide
//
// (calciom-load -record captures the same traffic client-side instead, for
// daemons that cannot record.)
//
// The trace format (version 2): a "CALTRACE" magic, a u16 format version,
// a JSON header (source, recording policy, performance-model constants),
// then little-endian records — every record is a u8 type, f64 timestamp,
// u32 session id and a u16-length-prefixed storage-target name (the shard
// that recorded it; version-1 records have no target field and read back
// as the default target "") plus type-specific extras — and a mandatory
// trailer carrying the recorded and dropped counts:
//
//	register    name, cores      session attached to this target's shard
//	prepare     sorted info map  stacked MPI_Info-style hints
//	complete    —                hint unstacked
//	inform      bytes done?      phase opened/continued (arbitrates)
//	progress    bytes done       progress only, no arbitration
//	check       —                authorization polled
//	wait        —                wait accepted (immediate or deferred)
//	release     bytes done?      access step ended (arbitrates)
//	end         —                phase ended (arbitrates)
//	unregister  —                session left this shard (disconnect/eviction)
//	recheck     —                arbitration not implied by a request
//	grant       —                outcome: authorization flipped on
//	revoke      —                outcome: authorization flipped off
//
// Timestamps are monotone per coordination domain (per target daemon-side,
// per client in captures); the file-level interleaving across shards is
// scheduling noise, which is why replay partitions before re-arbitrating.
//
// Versioning rules (authoritative in internal/trace): magic and version
// never move; unknown versions and record types are rejected; additive
// changes bump the version and newer readers accept older files (a v1
// single-target trace still loads and verifies exactly); a file without a
// trailer is reported as truncated, and the trailer's drop count marks a
// trace lossy — replay refuses it rather than silently diverging.
//
// Recording rides the arbitration goroutine without touching its
// guarantees: events travel by value through a fixed-capacity channel to a
// drain goroutine that owns all encoding and file I/O, so the hot path
// neither blocks nor allocates (BenchmarkServerArbitrateRecording: 0
// allocs/op, pinned by TestRecordingStaysAllocFree). Overflow is dropped
// and counted, never waited on — and replay refuses lossy traces rather
// than silently diverging.
//
// Replay mirrors the daemon's sharding: the trace is partitioned into
// per-target streams, each re-arbitrated through its own Arbiter, and the
// results are merged (client captures record one register/unregister per
// session, which the partitioner propagates to every target the session
// touches, at first touch — the daemon's lazy attach, reconstructed).
//
// Replay has two modes. Verify replays a daemon trace under its own
// recorded policy, re-arbitrating exactly where the recording did, and
// requires, per target, the reproduced grant/revoke sequence to match the
// recorded one event for event — exact, because each target's shard
// serializes its coordination through one goroutine and the trace captures
// that serialized order (the CI daemon-smoke job records a 64-client burst
// and asserts the replayed grant count and sequence match the live run;
// the multi-target smoke does the same per shard). What-if replay
// (replay.Under / replay.Compare) re-arbitrates the same arrival pattern
// under any policy, synthesizing delay-policy rechecks on the virtual
// clock, and derives a per-policy comparison: total and tail wait, the
// same convoy-vs-protocol wait decomposition the live wire.Stats reports,
// permitted-interference overlap, and estimated interference factors and
// CPU-seconds wasted under the paper's equal-share stretch model. The
// replay is open-loop (request instants stay where the recording put
// them), so cross-policy numbers are comparative estimates, not absolute
// predictions; calciom-replay prints the comparison with a recommended
// policy and is byte-identical across runs on one trace.
//
// # Failure model
//
// Daemon mode is engineered so that no single failure wedges an
// application forever and no failure silently corrupts coordination state.
// The contract, failure by failure:
//
//   - Client crash (process death, kill -9): the daemon sees the
//     connection drop. A registered session does not lose its grants
//     immediately — it enters a grace window (grant_grace_s, shorter than
//     the idle session timeout) during which a resumed incarnation can
//     reclaim its name and every grant it held. Only when the grace
//     expires are the session's grants revoked and its targets
//     re-arbitrated, so waiters behind a briefly-disconnected holder
//     resume exactly once, never twice.
//   - Daemon crash (kill -9, node loss): a client built with
//     Options.Reconnect redials with exponential backoff and jitter,
//     re-registers under the same name with a higher incarnation, and
//     replays its in-flight protocol state (stacked prepares, the open
//     phase, a blocking re-wait when it held a grant) so the resumed
//     session is indistinguishable from one that never disconnected.
//     If the daemon stays unreachable past Options.FailOpen, the client
//     degrades to self-granting — coordination is an optimization, not a
//     correctness requirement, so an unreachable daemon must never block
//     I/O forever. Every self-grant and every degraded second is counted
//     locally, reported to the daemon on resume, and folded into
//     wire.Stats per application, so an operator can see exactly how much
//     I/O ran uncoordinated. The daemon's trace survives its crash:
//     the recorder emits periodic sync records and the lenient reader
//     (trace.LoadLenient, calciom-replay/-trace -allow-truncated) reads
//     up to the torn tail and reports the truncation point — a crashed
//     run's surviving prefix still replays and verifies.
//   - Network partition: from each side this is just the cases above —
//     the daemon runs the grace window, the client runs
//     reconnect/fail-open. The internal/chaos proxy (calciom-load
//     -chaos-* flags, the CI chaos smoke) injects exactly these faults —
//     resets at arbitrary byte boundaries, forwarding delay, partition
//     windows — on a seeded deterministic schedule, and the accounting
//     invariant checked after every chaos run is exact:
//     coordinated grants + self-grants == phases run.
//   - Graceful drain (SIGTERM): the daemon stops accepting, answers every
//     parked wait with the retryable "draining" error code instead of
//     leaving it hanging, flushes the trace trailer, and exits clean; a
//     second signal force-closes. Reconnecting clients treat retryable
//     codes as a reconnect trigger, so a drained-and-restarted daemon is
//     a blip, not an outage.
//
// Typed wire error codes (wire.Code*, Response.Retryable) separate the
// transient from the fatal: "draining" is retryable; "stale_incarnation",
// "duplicate", "too_many_targets" and "protocol" are not, and a
// reconnecting client surfaces them instead of retrying forever.
// TestResumeReclaimsGrant and TestReconnectStorm pin the core invariant
// under -race: across forced disconnect and resume of a grant holder, a
// grant is never lost and never duplicated.
//
// # Performance
//
// The evaluation sweeps thousands of ∆-graph points, each a full
// discrete-event run, so the contention hot path is engineered to be
// index-based and allocation-free in steady state:
//
//   - fabric's global max-min solver (progressive filling) runs on scratch
//     arrays kept on the Fabric, indexed by dense link IDs, with slice
//     memberships and swap-delete instead of maps. One refill is
//     O(B·(F·L̄+L)) for B bottleneck rounds, F active flows crossing L̄
//     links each, and L links; it performs zero allocations, and its fixed
//     iteration order makes float accumulation — and therefore every
//     simulated rate — bit-reproducible across runs and GOMAXPROCS
//     settings.
//   - sim recycles fired/cancelled event records through a free list
//     (handles detach at fire time, so stale Cancels are always safe),
//     runs fire-and-forget zero-delay callbacks through the reusable
//     Post ring, and offers owner-managed reusable Timers for the
//     cancel/reschedule-heavy "next completion" pattern.
//   - fluid's Resource and closed-form Solver reuse their water-fill
//     scratch, and delta.Sweep runs on a fixed worker pool with per-worker
//     scratch.
//
// Benchmark methodology: go test -bench=Fabric -benchmem (micro), and
// BenchmarkDeltaSweepFabric for the macro path (a TrueNetwork ∆-sweep).
// Recorded on a Xeon @ 2.10GHz, go1.24, before → after this rewrite:
//
//	BenchmarkFabricReassign     18684 ns/op  26 allocs/op → 1442 ns/op  0 allocs/op  (13.0x)
//	BenchmarkDeltaSweepFabric   2.62 ms/op  11991 allocs  → 0.61 ms/op  7159 allocs  (4.3x)
//	BenchmarkEngineSchedule     90.7 ns/op  32 B/op       → 57.5 ns/op  16 B/op
//	BenchmarkEnginePost         (new fast path)             8.7 ns/op   0 allocs/op
//	BenchmarkEngineProcSleep    sleep/wake cycle           0 allocs/op
//
// TestReassignSteadyStateAllocFree and the determinism regression tests in
// internal/delta pin these properties in CI.
//
// # Platform reuse
//
// The ∆-graph methodology re-runs one scenario at dozens of start offsets,
// and what-if analytics re-evaluate one platform against many schedules.
// internal/platform makes that cheap: it builds the whole simulated
// platform — engine, optional fabric, pfs servers and stores, mpi apps,
// the coordination layer, the IOR runners — once, and Reset re-arms it for
// the next run instead of rebuilding. platform.Pool caches built platforms
// by spec on one engine (the per-sweep-worker reuse point); delta.RunOn,
// the solo calibrations and the figure harnesses all run through it.
//
// The reuse contract, layer by layer — Reset RETAINS capacity, CLEARS
// logical state:
//
//   - sim.Engine.Reset: retains the event-record free list, the Post ring,
//     the heap backing and the pooled procs (channel + wake timer + bound
//     closures each; the per-body goroutine exits with its body, so an
//     abandoned engine leaks nothing); clears the clock, sequence counter
//     and pending events.
//   - fabric.Fabric.Reset: retains links (and any capacity changes), solver
//     scratch and retired flows (moved to the free list, so Start stops
//     allocating); clears active flows, flow IDs and the progress clock.
//   - fluid.Resource.Reset / disk.Store.Reset: retain water-fill scratch
//     and retired jobs; clear job sets, dirty bytes and fill state, and
//     restore construction-time capacity.
//   - pfs.System.Reset: retains servers, stores, the file table with its
//     cached per-server request-name strings, pooled server requests (with
//     pre-bound completion closures) and pooled wait groups; clears queues
//     and file layout order (File.first is recomputed per Create).
//   - mpi.Platform.Reset: everything is immutable after construction; the
//     call only revalidates invariants.
//   - core.Layer.Reset: retains registrations (and so arrival tie-break
//     order) and the policy; clears protocol states, accounting and the
//     decision log — with fresh backing, so Log slices already handed out
//     stay valid.
//   - ior.Runner.Reset: retains the armed workload (presets fold their
//     defaults in exactly once, at construction) and cached file names;
//     clears per-run statistics, keeping their backing.
//
// Construction order is reproduced exactly on reuse (fabric, then server
// links, then app NICs, then registrations), so dense IDs — and with them
// every float accumulation order — match a fresh build: a reused platform
// is bit-identical to a fresh one, pinned by TestReusedPlatformMatchesFresh
// and the ior event-for-event regression. The payoff is pinned too: from a
// worker's second sweep point on, a TrueNetwork point runs with ZERO
// allocations (TestSweepPointSteadyStateAllocFree, BenchmarkDeltaPointReused):
//
//	BenchmarkDeltaSweepFabric        0.60 ms/op  7077 allocs → 0.32 ms/op  1002 allocs  (7.1x)
//	BenchmarkDeltaSweepFabricDense   3.59 ms/op 43553 allocs → 1.65 ms/op  1002 allocs  (43x, 2.2x time)
//	BenchmarkDeltaPointReused        (new)                     38 µs/op    0 allocs/op
//
// The remaining ~1000 allocations were per-Sweep setup: each call built
// per-worker platforms, solo calibrations and output slices from scratch.
// delta.Sweeper is the persistent executor that keeps them: it owns the
// solo-calibration pool and a set of persistent worker goroutines (one
// platform pool each) fed per sweep through a channel, reused across
// sweeps, and SweepInto reuses a caller-owned Series' backing. Repeated
// sweeps of one scenario (parameter studies, the macro benchmarks) now
// allocate nothing at all — the last per-sweep cost, spawning the worker
// goroutines, went with the feed channels:
//
//	BenchmarkDeltaSweepFabric        0.32 ms/op  1002 allocs → 0.27 ms/op  0 allocs
//	BenchmarkDeltaSweepFabricDense   1.65 ms/op  1002 allocs → 1.60 ms/op  ~1 alloc
//
// TestSweeperSteadyStateAllocs pins the zero; TestSweeperReuseBitIdentical
// pins that executor reuse stays bit-identical to fresh sweeps.
//
// # Sharded arbitration throughput
//
// The daemon's arbitration is sharded by storage target (one Arbiter and
// one goroutine per target, no shared coordination state), which scales
// aggregate grant throughput two ways at once: arbitration work is O(apps
// in the shard) per grant, and shards run concurrently across cores.
// BenchmarkServerArbitrateSharded drives one fixed 64-session fleet split
// over K targets; even on a single core the work sharding alone gives
// (Xeon @ 2.10GHz, go1.24, GOMAXPROCS=1):
//
//	targets=1   14.7 µs/op    68k grants/s  0 allocs/op  (the one-arbiter baseline)
//	targets=2    5.3 µs/op   188k grants/s  0 allocs/op  (2.8x)
//	targets=4    2.2 µs/op   445k grants/s  0 allocs/op  (6.5x)
//	targets=8    1.1 µs/op   919k grants/s  0 allocs/op  (13.5x)
//
// On multi-core machines the per-shard goroutines add wall-clock
// parallelism on top. TestStressShardedExactlyOneWriterPerTarget pins the
// safety side under -race: within a target fcfs still admits exactly one
// writer, while a grant on one target never blocks a waiter on another.
//
// # Observability
//
// calciomd -admin ADDR (admin_addr in the config) serves the daemon's
// observability surface on a second listener, built on the dependency-free
// internal/obs package:
//
//	/metrics        Prometheus text format: counters, gauges, histograms
//	/healthz        "serving", "draining" or "degraded" (non-serving: 503)
//	/statusz        the full wire.Stats snapshot as indented JSON
//	/debug/pprof/   the standard net/http/pprof profiles
//
// Enabling the listener also enables collection; without -admin the
// registry is nil and the arbitration goroutines run the exact
// pre-observability instruction stream (fault-free agg and replay output is
// byte-identical either way). Collection follows the same discipline as
// trace recording: every per-shard series is resolved once at shard
// creation and the hot path performs only atomic adds — zero allocations,
// pinned by TestMetricsStayAllocFree and BenchmarkServerArbitrateMetrics.
//
// The hot-path series are per storage target (label target=""): grants,
// arbitrations and revokes (calciomd_grants_total,
// calciomd_arbitrations_total, calciomd_revokes_total), the
// immediate-vs-deferred wait split (calciomd_waits_immediate_total,
// calciomd_waits_deferred_total), the live wait-queue depth
// (calciomd_queue_depth) and two fixed-bucket latency histograms —
// calciomd_wait_seconds (request-to-grant, immediate waits observe 0) and
// calciomd_hold_seconds (grant-to-release). The control goroutine adds the
// fault-tolerance counters (calciomd_self_grants_total,
// calciomd_degraded_seconds_total, calciomd_resumes_total), the connection
// layer counts negotiated codecs (calciomd_connections_total, labels codec
// and mux), tracks live multiplexed streams (calciomd_mux_streams) and the
// group-commit batch-size distribution (calciomd_mux_batch_frames), and
// counts raw wire traffic beneath the codec buffers
// (calciomd_bytes_in_total, calciomd_bytes_out_total), and scrape time
// adds the stats-merge view: calciomd_sessions, calciomd_cpu_seconds_wasted
// and the per-application calciomd_app_* rows (labels app, target). The
// wait histograms also ride the stats merge into wire.Stats.WaitHist, so
// TCP stats consumers get the same distribution the scrape reports.
// calciom-load -scrape URL diffs the scrape against client-side truth in
// the CI smoke jobs, exactly.
//
// With -log-level (debug logs per-grant events; -log-sample N thins them to
// every Nth) the daemon emits a structured grant-lifecycle stream through
// log/slog: register/resume/disconnect (info), grant (debug; wait seconds,
// queue position, deferred-vs-immediate, convoy cause), revoke (info), and
// grace-expired/drain (warn). Emission is off the hot path — events travel
// by value through a fixed-capacity channel to a formatting goroutine,
// overflow is dropped and counted, never blocked on — the recording
// subsystem's discipline, applied to logging.
//
// # Overload model
//
// The daemon protects itself from more load than it can coordinate, in
// three layers applied in fixed order — admission, then shedding, then
// rate limiting — each answering with a typed retryable error rather than
// degrading silently:
//
//   - Admission control (-max-sessions / max_sessions): registrations of
//     fresh names beyond the bound are rejected with the retryable code
//     "busy"; resumes of existing names are always admitted (a reconnecting
//     holder must never be locked out of its own grants). Alongside it,
//     -handshake-timeout (handshake_timeout_s, shorter than the idle
//     session timeout) drops connections that never register — the
//     slow-loris hole idle eviction cannot see, because eviction only
//     covers registered sessions.
//   - Load shedding: each shard queue has a high-water mark (3/4 of
//     capacity) above which advisory verbs — inform, progress, check,
//     stats — are answered from the reader goroutine with the retryable
//     code "overloaded" instead of being enqueued. State-critical verbs
//     (register, prepare, complete, wait, release, end) are never shed:
//     shedding a release or end would wedge the grant pipeline behind a
//     holder the daemon itself refused to hear from. Brownout exit is
//     hysteretic (low-water mark at 1/4), so the daemon does not flap at
//     the threshold; while any queue is hot, /healthz reports "overloaded".
//   - Per-connection rate limiting (-max-requests-per-sec /
//     max_requests_per_sec): a token bucket per connection (burst = one
//     second's worth), maintained as plain locals on the reader goroutine —
//     zero allocation, zero locks. The first over-limit request gets one
//     retryable "overloaded" reply; a second violation with no compliant
//     request in between disconnects the connection.
//
// The client contract: "busy" and "overloaded" are retryable-in-place
// (wire.Retryable) — a reconnecting client backs off exponentially and
// retries on the same connection, unlike "draining" which cycles the
// connection. Clients that are too slow to drain their response buffer are
// disconnected (calciomd_slow_disconnects_total) rather than allowed to
// stall arbitration, and with a grace window their grants survive for a
// resume. Every layer is observable: calciomd_busy_rejects_total,
// calciomd_sheds_total (per target), calciomd_stats_sheds_total,
// calciomd_rate_limited_total, calciomd_handshake_timeouts_total, and
// busy-reject/shed/rate-limited events in the -log-level stream.
//
// The decoder boundary below all of this is fuzzed: FuzzReadFrame and
// FuzzDecodeRequest (internal/wire), FuzzReadFrameBinary,
// FuzzDecodeRequestBinary and FuzzDecodeMuxFrame (internal/wirebin, the
// middle one checking the canonical re-encode round trip, the last
// covering the stream-id prefix in both directions) and FuzzReader (internal/trace, strict
// and lenient modes) run in CI, seeded from the golden-bytes corpora, so
// arbitrary bytes on a socket or in a trace file fail with an error — never
// a panic or an unbounded allocation. calciom-load provides the probes:
// -flood registers a whole fleet at once against the session bound and
// asserts grant conservation (grants == admitted), and -chaos-garbage makes
// the chaos proxy inject seeded bit flips and junk frames into live
// connections.
package repro
