// Package repro is a from-scratch Go reproduction of
//
//	CALCioM: Mitigating I/O Interference in HPC Systems through
//	Cross-Application Coordination — Dorier, Antoniu, Ross, Kimpe,
//	Ibrahim. IPDPS 2014.
//
// The library lives under internal/: a deterministic discrete-event engine
// (sim), a fluid contention model (fluid), storage targets with write-back
// caches (disk), a striped parallel file system (pfs), an MPI-like
// application model (mpi), the IOR-derived benchmark (ior), the CALCioM
// coordination layer itself (core), machine-wide efficiency metrics
// (metrics), the ∆-graph harness (delta), SWF workload-trace tooling (swf),
// the per-figure experiment reproductions (experiments), and the live
// coordination daemon (wire, server, client).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. bench_test.go in this
// directory regenerates every table and figure of the paper's evaluation.
//
// # Architecture: simulator mode and daemon mode
//
// The coordination layer runs in two deployments sharing one arbitration
// core (core.Arbiter: AppView construction, the policy call, decision
// application onto per-app authorization):
//
//   - Simulator mode: core.Layer inside the discrete-event engine. Each
//     application is a simulated process; coordination messages travel with
//     a configured latency; the ∆-graph harness and the figure
//     reproductions run here.
//   - Daemon mode: calciomd (internal/server) serves the same protocol
//     over TCP. Per-connection reader/writer goroutines funnel requests
//     into a single arbitration goroutine — no locks on the hot path, and
//     decisions are deterministic given a serialized request order.
//     internal/client mirrors the Coordinator/Session API so driver code
//     is the same shape in both modes, and calciom-load replays SWF traces
//     or synthetic phase mixes over N concurrent connections.
//
// The wire protocol (internal/wire) is length-prefixed JSON; one Response
// answers every Request (the Wait response is deferred until arbitration
// grants access), plus unsolicited grant/revoke pushes:
//
//	register  App, Cores     introduce the application
//	prepare   Info           stack MPI_Info-style hints (bytes_total, ...)
//	complete  —              unstack the most recent prepare
//	inform    BytesDone?     open/continue an I/O phase, trigger arbitration
//	progress  BytesDone      report progress only; no state change
//	check     —              poll authorization, never blocks
//	wait      —              block until authorized (deferred response)
//	release   BytesDone?     end one access step
//	end       —              end the I/O phase
//	stats     —              LASSi-style live metrics snapshot
//
// Quickstart (two terminals):
//
//	go run ./cmd/calciomd -listen 127.0.0.1:9595 -policy fcfs
//	go run ./cmd/calciom-load -addr 127.0.0.1:9595 -clients 64 -phases 4
//
// # Performance
//
// The evaluation sweeps thousands of ∆-graph points, each a full
// discrete-event run, so the contention hot path is engineered to be
// index-based and allocation-free in steady state:
//
//   - fabric's global max-min solver (progressive filling) runs on scratch
//     arrays kept on the Fabric, indexed by dense link IDs, with slice
//     memberships and swap-delete instead of maps. One refill is
//     O(B·(F·L̄+L)) for B bottleneck rounds, F active flows crossing L̄
//     links each, and L links; it performs zero allocations, and its fixed
//     iteration order makes float accumulation — and therefore every
//     simulated rate — bit-reproducible across runs and GOMAXPROCS
//     settings.
//   - sim recycles fired/cancelled event records through a free list
//     (handles detach at fire time, so stale Cancels are always safe),
//     runs fire-and-forget zero-delay callbacks through the reusable
//     Post ring, and offers owner-managed reusable Timers for the
//     cancel/reschedule-heavy "next completion" pattern.
//   - fluid's Resource and closed-form Solver reuse their water-fill
//     scratch, and delta.Sweep runs on a fixed worker pool with per-worker
//     scratch.
//
// Benchmark methodology: go test -bench=Fabric -benchmem (micro), and
// BenchmarkDeltaSweepFabric for the macro path (a TrueNetwork ∆-sweep).
// Recorded on a Xeon @ 2.10GHz, go1.24, before → after this rewrite:
//
//	BenchmarkFabricReassign     18684 ns/op  26 allocs/op → 1442 ns/op  0 allocs/op  (13.0x)
//	BenchmarkDeltaSweepFabric   2.62 ms/op  11991 allocs  → 0.61 ms/op  7159 allocs  (4.3x)
//	BenchmarkEngineSchedule     90.7 ns/op  32 B/op       → 57.5 ns/op  16 B/op
//	BenchmarkEnginePost         (new fast path)             8.7 ns/op   0 allocs/op
//	BenchmarkEngineProcSleep    sleep/wake cycle           0 allocs/op
//
// TestReassignSteadyStateAllocFree and the determinism regression tests in
// internal/delta pin these properties in CI.
package repro
